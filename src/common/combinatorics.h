// Subset and mixed-radix enumeration helpers for the optimizer's k-of-K
// circle-group search and the bid-tuple product grids.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace sompi {

/// Calls fn(indices) for every size-k subset of {0, ..., n-1}, in
/// lexicographic order. indices is reused across calls.
template <typename Fn>
void for_each_combination(std::size_t n, std::size_t k, Fn&& fn) {
  SOMPI_REQUIRE(k <= n);
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    fn(idx);
    return;
  }
  for (;;) {
    fn(idx);
    // Advance: find the rightmost index that can still move right.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] + (k - i) < n) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

/// Calls fn(digits) for every tuple in the mixed-radix product space with
/// the given per-position radices. digits is reused across calls.
template <typename Fn>
void for_each_tuple(const std::vector<std::size_t>& radices, Fn&& fn) {
  for (std::size_t r : radices) SOMPI_REQUIRE(r >= 1);
  std::vector<std::size_t> digits(radices.size(), 0);
  for (;;) {
    fn(digits);
    std::size_t i = 0;
    while (i < radices.size() && ++digits[i] == radices[i]) digits[i++] = 0;
    if (i == radices.size()) return;
  }
}

/// Mixed-radix odometer in lexicographic order: the LAST digit varies
/// fastest, so between consecutive tuples only a suffix of digits changes
/// and the unchanged digits form a prefix. This is what makes incremental
/// (prefix-state) evaluation bit-identical to a from-scratch left-to-right
/// pass: a consumer that caches per-prefix partial products can resume the
/// fold at the lowest changed index and perform exactly the same sequence
/// of floating-point operations as a full re-evaluation.
///
/// skip_from(level) abandons every remaining tuple that shares digits
/// [0, level] with the current one — the branch-and-bound subtree cut.
class TupleOdometer {
 public:
  explicit TupleOdometer(std::vector<std::size_t> radices)
      : radices_(std::move(radices)), digits_(radices_.size(), 0) {
    for (std::size_t r : radices_) SOMPI_REQUIRE(r >= 1);
  }

  std::size_t size() const { return radices_.size(); }
  const std::vector<std::size_t>& digits() const { return digits_; }
  const std::vector<std::size_t>& radices() const { return radices_; }
  bool done() const { return done_; }

  /// Tuples in the subtree rooted at the current digits [0, level]: every
  /// combination of the digits below it (floating point — sizing only).
  double subtree_size(std::size_t level) const {
    double n = 1.0;
    for (std::size_t i = level + 1; i < radices_.size(); ++i)
      n *= static_cast<double>(radices_[i]);
    return n;
  }

  /// Advances to the next tuple; returns the lowest index whose digit
  /// changed, or size() when the enumeration is exhausted (done() becomes
  /// true). Digits below the returned index reset to 0.
  std::size_t advance() { return bump(radices_.size()); }

  /// Skips every remaining tuple sharing digits [0, level] with the current
  /// one, i.e. advances digit `level` directly. Same return convention as
  /// advance().
  std::size_t skip_from(std::size_t level) {
    SOMPI_REQUIRE(level < radices_.size());
    return bump(level + 1);
  }

 private:
  /// Advances the digit just above `from` (carrying upward), resetting every
  /// digit at or below `from` to 0.
  std::size_t bump(std::size_t from) {
    SOMPI_REQUIRE(!done_);
    for (std::size_t i = from; i < radices_.size(); ++i) digits_[i] = 0;
    std::size_t i = from;
    while (i-- > 0) {
      if (++digits_[i] < radices_[i]) return i;
      digits_[i] = 0;
    }
    done_ = true;
    return radices_.size();
  }

  std::vector<std::size_t> radices_;
  std::vector<std::size_t> digits_;
  bool done_ = false;
};

/// Calls fn(digits, changed_from) for every tuple in lexicographic order
/// (last digit fastest). changed_from is the lowest index whose digit
/// differs from the previous call (0 on the first call). digits is reused
/// across calls.
template <typename Fn>
void for_each_tuple_lex(const std::vector<std::size_t>& radices, Fn&& fn) {
  TupleOdometer od(radices);
  std::size_t changed = 0;
  while (!od.done()) {
    fn(od.digits(), changed);
    changed = od.advance();
  }
}

/// Binomial coefficient C(n, k) in floating point (sizing estimates only).
inline double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  double r = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
  return r;
}

}  // namespace sompi
