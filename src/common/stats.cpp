#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace sompi {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  SOMPI_REQUIRE_MSG(n_ > 0, "min() of empty OnlineStats");
  return min_;
}

double OnlineStats::max() const {
  SOMPI_REQUIRE_MSG(n_ > 0, "max() of empty OnlineStats");
  return max_;
}

double percentile(std::vector<double> values, double q) {
  SOMPI_REQUIRE(!values.empty());
  SOMPI_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  SOMPI_REQUIRE(lo < hi);
  SOMPI_REQUIRE(bins >= 1);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  SOMPI_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::bin_lo(std::size_t bin) const {
  SOMPI_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  SOMPI_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

double Histogram::l1_distance(const Histogram& a, const Histogram& b) {
  SOMPI_REQUIRE_MSG(a.bins() == b.bins() && a.lo_ == b.lo_ && a.hi_ == b.hi_,
                    "histograms must share binning");
  double d = 0.0;
  for (std::size_t i = 0; i < a.bins(); ++i) d += std::abs(a.density(i) - b.density(i));
  return d;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  double max_density = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) max_density = std::max(max_density, density(i));
  for (std::size_t i = 0; i < bins(); ++i) {
    const double d = density(i);
    const auto bar =
        max_density > 0.0
            ? static_cast<std::size_t>(d / max_density * static_cast<double>(width) + 0.5)
            : 0;
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%8.4f,%8.4f) %6.2f%% ", bin_lo(i), bin_hi(i), d * 100.0);
    os << buf << std::string(bar, '#') << '\n';
  }
  return os.str();
}

Summary summarize(const std::vector<double>& values) {
  SOMPI_REQUIRE(!values.empty());
  OnlineStats acc;
  for (double v : values) acc.add(v);
  Summary s;
  s.n = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  return s;
}

}  // namespace sompi
