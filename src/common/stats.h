// Streaming and batch statistics used across the cost model, the trace
// analyzer, and every benchmark report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sompi {

/// Numerically stable streaming mean/variance/extrema (Welford's algorithm).
class OnlineStats {
 public:
  /// Incorporates one observation.
  void add(double x);

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of an unsorted sample; q in [0, 1].
/// Requires a non-empty sample.
double percentile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// boundary bins so no observation is dropped.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Fraction of observations in the given bin (0 if the histogram is empty).
  double density(std::size_t bin) const;
  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double bin_hi(std::size_t bin) const;

  /// L1 distance between the two normalized histograms (same binning
  /// required). 0 = identical distributions, 2 = disjoint.
  static double l1_distance(const Histogram& a, const Histogram& b);

  /// Renders an ASCII bar chart, one line per bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Convenience summary of a batch of values.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes the Summary for a non-empty sample.
Summary summarize(const std::vector<double>& values);

}  // namespace sompi
