#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

namespace sompi {

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned resolve_threads(unsigned requested) {
  return requested == 0 ? hardware_threads() : requested;
}

// One published parallel range. Lives on the publishing caller's stack; the
// caller only returns after `remaining` hit zero AND every worker that
// joined has left (participants back to 1), so workers never touch a dead
// Job. `participants` is guarded by the pool mutex; the index/progress
// counters are atomics so claiming stays lock-free.
struct ThreadPool::Job {
  std::size_t n = 0;
  unsigned max_participants = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};       ///< first unclaimed index
  std::atomic<std::size_t> remaining{0};  ///< indices not yet finished/skipped
  unsigned participants = 0;              ///< caller + joined workers (mutex)
  std::mutex err_mutex;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  // At least 3 workers even on a 1-core box: the determinism suite relies on
  // genuinely concurrent claiming to prove schedule independence.
  static ThreadPool pool(std::max(4u, hardware_threads()) - 1);
  return pool;
}

void ThreadPool::participate(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.body)(i);
      job.remaining.fetch_sub(1, std::memory_order_acq_rel);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.err_mutex);
        if (i < job.err_index) {
          job.err_index = i;
          job.error = std::current_exception();
        }
      }
      // Short-circuit: mark every still-unclaimed index as skipped. exchange
      // returns the old claim cursor, so [prev, n) is exactly the skipped set
      // (concurrent throwers see prev == n and account for nothing).
      const std::size_t prev = job.next.exchange(job.n, std::memory_order_acq_rel);
      const std::size_t skipped = prev < job.n ? job.n - prev : 0;
      job.remaining.fetch_sub(skipped + 1, std::memory_order_acq_rel);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        if (stop_) return true;
        for (Job* j : jobs_)
          if (j->participants < j->max_participants &&
              j->next.load(std::memory_order_relaxed) < j->n)
            return true;
        return false;
      });
      if (stop_) return;
      for (Job* j : jobs_) {
        if (j->participants < j->max_participants &&
            j->next.load(std::memory_order_relaxed) < j->n) {
          job = j;
          ++j->participants;
          break;
        }
      }
    }
    if (job == nullptr) continue;  // raced with another worker; re-wait
    participate(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->participants;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t n, unsigned max_participants,
                                const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (max_participants <= 1 || n == 1 || threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Job job;
  job.n = n;
  job.max_participants = max_participants;
  job.body = &body;
  job.remaining.store(n, std::memory_order_relaxed);
  job.participants = 1;  // the caller
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(&job);
  }
  work_cv_.notify_all();

  participate(job);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 && job.participants == 1;
    });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  }
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  const unsigned t = resolve_threads(threads);
  if (t <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::shared().for_each_index(n, t, body);
}

}  // namespace sompi
