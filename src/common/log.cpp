#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sompi {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
}

}  // namespace sompi
