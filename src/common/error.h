// Error handling primitives shared by every sompi module.
//
// We deliberately use exceptions for precondition violations: the optimizer
// and simulator are plain single-owner libraries, and a violated invariant is
// a programming error that should abort the experiment loudly rather than
// corrupt a cost estimate silently.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sompi {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant does not hold (a sompi bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on I/O problems (trace files, checkpoint stores).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace sompi

/// Validate a caller-supplied precondition; throws sompi::PreconditionError.
#define SOMPI_REQUIRE(expr)                                                      \
  do {                                                                           \
    if (!(expr)) ::sompi::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like SOMPI_REQUIRE with a human-readable context message.
#define SOMPI_REQUIRE_MSG(expr, msg)                                               \
  do {                                                                             \
    if (!(expr)) ::sompi::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Validate an internal invariant; throws sompi::InvariantError.
#define SOMPI_ASSERT(expr)                                                    \
  do {                                                                        \
    if (!(expr)) ::sompi::detail::throw_invariant(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SOMPI_ASSERT_MSG(expr, msg)                                             \
  do {                                                                          \
    if (!(expr)) ::sompi::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
