// Tiny leveled logger. Experiments are long loops; INFO lines mark phase
// boundaries, DEBUG is compiled in but off by default.
#pragma once

#include <sstream>
#include <string>

namespace sompi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix when enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_line(LogLevel::kDebug, detail::concat(args...));
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_line(LogLevel::kInfo, detail::concat(args...));
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_line(LogLevel::kWarn, detail::concat(args...));
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_line(LogLevel::kError, detail::concat(args...));
}

}  // namespace sompi
