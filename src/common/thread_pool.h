// Work-stealing thread pool with deterministic parallel_for / parallel_reduce
// helpers.
//
// Determinism contract (see DESIGN.md "Parallel execution"): every parallel
// construct in sompi is written so the RESULT is a pure function of its
// inputs, never of the schedule. parallel_for hands out disjoint indices;
// parallel_reduce splits the range into chunks whose boundaries depend only
// on (n, grain) — not on the thread count — maps each chunk independently,
// and folds the per-chunk results serially in chunk order. Same inputs ⇒
// same bits at threads = 1, 2, or 64.
//
// The `threads` convention used across the codebase:
//   0 → hardware concurrency, 1 → serial inline (the pool is never touched),
//   t → at most t participants (the calling thread plus pool workers).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"

namespace sompi {

/// std::thread::hardware_concurrency clamped to >= 1.
unsigned hardware_threads();

/// The threads knob: 0 → hardware_threads(), anything else unchanged.
unsigned resolve_threads(unsigned requested);

/// A pool of persistent worker threads. Parallel ranges are published as
/// jobs; idle workers steal pending indices from the oldest job that still
/// has work and a free participant slot, while the publishing thread always
/// participates in its own job. Because a caller drains its own range when
/// every worker is busy, nested parallel_for calls (a parallel body that
/// itself goes parallel) cannot deadlock.
class ThreadPool {
 public:
  /// Spawns `workers` persistent threads (0 is allowed: every range is then
  /// drained by its caller).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Runs body(i) for every i in [0, n), using the calling thread plus at
  /// most max_participants - 1 pool workers. Blocks until every index has
  /// finished. If any body throws, the exception thrown by the
  /// lowest-claimed index is rethrown here and the remaining unclaimed
  /// indices are skipped. Safe to call from inside another job's body.
  void for_each_index(std::size_t n, unsigned max_participants,
                      const std::function<void(std::size_t)>& body);

  /// Process-wide pool used by the parallel_for / parallel_reduce helpers.
  /// Sized so that determinism tests exercise real interleaving even on
  /// single-core machines (oversubscription is harmless for correctness).
  static ThreadPool& shared();

 private:
  struct Job;

  void worker_loop();
  /// Claims indices from `job` until the range is exhausted.
  void participate(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: "a job may have work"
  std::condition_variable done_cv_;  ///< callers: "a worker left a job"
  std::vector<Job*> jobs_;           ///< published, possibly unfinished jobs
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) with the given threads knob (0 = hardware,
/// 1 = serial inline on the calling thread). The parallel path uses
/// ThreadPool::shared(). Exceptions propagate; the one from the
/// lowest-claimed index wins.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& body);

/// Deterministic map-reduce over [0, n): splits the range into
/// ceil(n / grain) chunks (chunking depends only on n and grain, never on
/// the thread count), evaluates acc = combine(acc, map(i)) serially inside
/// each chunk, and folds the per-chunk accumulators serially in chunk
/// order. combine(T, T) must accept both a mapped value and a folded
/// accumulator; it need not be commutative, and floating-point
/// non-associativity is harmless because the grouping is fixed.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, unsigned threads, T init, MapFn map, CombineFn combine,
                  std::size_t grain = 1) {
  SOMPI_REQUIRE(grain >= 1);
  if (n == 0) return init;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partial(chunks, init);
  parallel_for(chunks, threads, [&](std::size_t c) {
    T acc = init;
    const std::size_t lo = c * grain;
    const std::size_t hi = std::min(n, lo + grain);
    for (std::size_t i = lo; i < hi; ++i) acc = combine(std::move(acc), map(i));
    partial[c] = std::move(acc);
  });
  T total = std::move(init);
  for (T& p : partial) total = combine(std::move(total), std::move(p));
  return total;
}

}  // namespace sompi
