// Trace-replay execution of a plan (paper §5.1 "Simulation").
//
// "We use the method of replaying the trace from the spot market, and
//  calculate the monetary cost given the spot price in the trace. We
//  randomly choose a start point in the trace and compare our bid price with
//  the spot price along the time."
//
// Unlike the expectation model (core/cost_model.h), replay bills the ACTUAL
// trace price at every step, terminates the surviving replicas the moment
// one completes, and recovers on demand from the most advanced checkpoint —
// i.e. it implements the real hybrid-execution semantics the model
// approximates. The gap between the two is exactly what bench A2 measures.
#pragma once

#include <string>
#include <vector>

#include "cloud/billing.h"
#include "core/adaptive.h"
#include "core/plan.h"
#include "faultinject/injector.h"
#include "trace/market.h"

namespace sompi {

struct ReplayConfig {
  BillingModel billing = BillingModel::kProportional;
  /// Amazon S3, 2014: ~$0.03 per GB-month (paper §4.4 "Checkpointing").
  double s3_usd_gb_month = 0.03;
  /// Optional chaos hook (borrowed): a (group, step) the injector names is
  /// killed as if the trace price had exceeded the bid, regardless of the
  /// actual price. Stateless decisions, so replays stay bit-identical.
  const fi::FaultInjector* faults = nullptr;
};

/// Fate of one circle group in one replay.
struct GroupRunStat {
  std::string name;
  double lifetime_h = 0.0;  ///< wall time until death/completion/termination
  bool completed = false;   ///< finished the application
  bool killed = false;      ///< out-of-bid termination
  int checkpoints = 0;
  double cost_usd = 0.0;
  double saved_fraction = 0.0;  ///< durable progress at end of life
};

struct ReplayResult {
  double cost_usd = 0.0;  ///< spot + on-demand + checkpoint storage
  double spot_cost_usd = 0.0;
  double od_cost_usd = 0.0;
  double storage_cost_usd = 0.0;
  double time_h = 0.0;  ///< wall time to application completion
  bool completed_on_spot = false;
  bool used_od_recovery = false;
  double recovered_ratio = 0.0;  ///< fraction of the app redone on demand
  std::vector<GroupRunStat> groups;
};

class ReplayEngine {
 public:
  /// The market is borrowed and must outlive the engine.
  ReplayEngine(const Market* market, ReplayConfig config = {});

  const Market& market() const { return *market_; }

  /// Replays a full plan starting at absolute market time `start_h`:
  /// all circle groups launch simultaneously; the run ends when one group
  /// completes (survivors are terminated) or all die and the most advanced
  /// checkpoint is recovered on the plan's on-demand tier. A plan without
  /// spot groups is a pure on-demand run.
  ReplayResult replay(const Plan& plan, double start_h) const;

  /// Replays at most `window_h` hours of the plan — the adaptive engine's
  /// per-window execution primitive. Durable progress is the best
  /// checkpointed (or completed) fraction across groups; at the window
  /// boundary the surviving leader's state is checkpointed (Algorithm 1).
  WindowOutcome replay_window(const Plan& plan, double start_h, double window_h) const;

 private:
  const Market* market_;
  ReplayConfig config_;
};

/// ExecutionOracle over a recorded market: the adaptive engine sees only
/// the trailing history at each window boundary, and windows execute by
/// trace replay.
class MarketReplayOracle final : public ExecutionOracle {
 public:
  explicit MarketReplayOracle(const Market* market, ReplayConfig config = {});

  WindowOutcome run_window(const Plan& plan, double start_h, double window_h) override;
  Market history_at(double now_h, double lookback_h) override;

 private:
  const Market* market_;
  ReplayEngine engine_;
};

}  // namespace sompi
