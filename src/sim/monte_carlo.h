// Monte Carlo evaluation harness (paper §5.1: "We randomly choose a start
// point in the trace ... We repeat the simulation ... and calculate the
// expected cost").
//
// Three entry points, one per planning style:
//   * run_plan     — a fixed plan replayed from many random start points.
//   * run_planned  — re-plans per start point from the history visible
//                    *before* that start (no look-ahead), then replays.
//   * run_adaptive — the full Algorithm-1 loop per start point.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/stats.h"
#include "core/adaptive.h"
#include "sim/replay.h"

namespace sompi {

struct MonteCarloConfig {
  std::size_t runs = 200;
  std::uint64_t seed = 0xB1D5;
  /// History required before a start point (failure-model lookback).
  double lookback_h = 48.0;
  /// Execution room required after a start point.
  double reserve_h = 120.0;
  /// Worker threads for the independent start points: 0 = hardware
  /// concurrency, 1 = serial. Every run draws from its own Rng derived by
  /// counter-based reseeding (seed ⊕ run_index through SplitMix64), and
  /// per-run results land in run-index order before summarization, so the
  /// stats are bit-identical at any thread count. With threads != 1 the
  /// planner passed to run_planned must be safe to call concurrently.
  unsigned threads = 1;
};

struct MonteCarloStats {
  Summary cost;            ///< USD per run
  Summary time;            ///< hours per run
  double deadline_miss_rate = 0.0;
  double od_fallback_rate = 0.0;  ///< runs that needed the on-demand tier
  std::size_t runs = 0;
};

class MonteCarloRunner {
 public:
  /// Builds a plan from the history visible at the start point.
  using Planner = std::function<Plan(const Market& history, double deadline_h)>;

  MonteCarloRunner(const Market* market, ReplayConfig replay_config,
                   MonteCarloConfig config);

  /// Replays one fixed plan from random start points.
  MonteCarloStats run_plan(const Plan& plan, double deadline_h) const;

  /// Re-plans at every start point (fair static baselines: decisions may
  /// only use the past), then replays.
  MonteCarloStats run_planned(const Planner& planner, double deadline_h) const;

  /// Runs the adaptive engine per start point.
  MonteCarloStats run_adaptive(const AdaptiveEngine& engine, const AppProfile& app,
                               double deadline_h) const;

 private:
  double sample_start(Rng& rng) const;
  /// Independent per-run generator: seed ⊕ run_index scrambled by SplitMix64.
  Rng run_rng(std::size_t run_index) const;

  const Market* market_;
  ReplayConfig replay_config_;
  MonteCarloConfig config_;
};

}  // namespace sompi
