// Live execution: the end-to-end demonstration that a SOMPI plan drives a
// REAL MPI application, not just the cost model.
//
// For each circle group in the plan, the executor derives the out-of-bid
// kill instant from the market trace (first price above the group's bid),
// maps it to an application-iteration budget, and runs the actual kernel on
// the mini-MPI runtime with that kill armed and coordinated checkpoints at
// the plan's interval. Hybrid-execution semantics follow the paper: the
// first group to complete wins; if every group is killed, the most advanced
// checkpoint is restored and the run is finished kill-free (the on-demand
// recovery tier).
//
// Groups execute sequentially in process (they would be concurrent fleets
// on EC2); the market timeline still treats them as parallel replicas.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/app.h"
#include "checkpoint/storage.h"
#include "core/plan.h"
#include "trace/market.h"

namespace sompi {

struct LiveGroupOutcome {
  std::string name;
  bool completed = false;
  bool killed = false;
  /// Wall step (from the group's launch) of the out-of-bid kill, if any.
  std::size_t kill_step = 0;
  int checkpoints_saved = 0;
};

struct LiveRunResult {
  bool completed_on_spot = false;
  bool recovered_on_demand = false;
  /// Checksum of the winning execution (spot completion or recovery).
  double checksum = 0.0;
  int total_iterations_run = 0;
  std::vector<LiveGroupOutcome> groups;
};

class LiveExecutor {
 public:
  /// Runs the application: `checkpoint_every` is in app iterations (0 = no
  /// checkpoints); `ck` may be null when checkpointing is off.
  using AppRunner =
      std::function<apps::AppResult(mpi::Comm& comm, CoordinatedCheckpointing* ck, int checkpoint_every)>;

  /// The market is borrowed and must outlive the executor.
  explicit LiveExecutor(const Market* market);

  /// Executes `plan` live starting at absolute market time `start_h`.
  /// `world_size` ranks per replica, `app_iterations` total iterations of
  /// the kernel; `store` holds every group's checkpoints.
  LiveRunResult execute(const Plan& plan, double start_h, int world_size, int app_iterations,
                        const AppRunner& runner, StorageBackend& store) const;

 private:
  const Market* market_;
};

}  // namespace sompi
