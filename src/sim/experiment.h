// Canonical experiment environment shared by every bench binary and the
// examples: the paper catalog, a long synthetic market with the Figure-1
// profile, the Baseline normalization (§5.1 "Comparisons") and Monte-Carlo
// evaluation of each method, normalized the way the paper reports it.
#pragma once

#include <functional>
#include <string>

#include "baselines/ablations.h"
#include "baselines/baselines.h"
#include "profile/paper_profiles.h"
#include "sim/monte_carlo.h"

namespace sompi {

/// One normalized evaluation of a method on a workload.
struct MethodResult {
  std::string method;
  double norm_cost = 0.0;      ///< mean cost / Baseline Cost
  double norm_cost_std = 0.0;  ///< cost stddev / Baseline Cost
  double norm_time = 0.0;      ///< mean time / Baseline Time
  double miss_rate = 0.0;      ///< fraction of runs past the deadline
};

class Experiment {
 public:
  struct Options {
    double market_days = 14.0;
    double step_hours = 0.25;
    std::uint64_t seed = 2014;
    /// Monte-Carlo runs per (app, method, deadline). The paper uses 100+;
    /// the default keeps the full bench suite minutes-scale. Override with
    /// the SOMPI_BENCH_RUNS environment variable.
    std::size_t runs = 30;
    /// Loose/tight deadline factors over Baseline Time (§5.1).
    double loose = 1.5;
    double tight = 1.05;
  };

  explicit Experiment(Options options = defaults());

  /// Options with SOMPI_BENCH_RUNS applied.
  static Options defaults();

  const Catalog& catalog() const { return catalog_; }
  const Market& market() const { return market_; }
  const ExecTimeEstimator& estimator() const { return est_; }
  const Options& options() const { return options_; }

  /// The paper's Baseline: fastest on-demand tier (cost and time of it).
  OnDemandChoice baseline(const AppProfile& app) const;
  double baseline_cost(const AppProfile& app) const;
  double baseline_time(const AppProfile& app) const;
  double deadline(const AppProfile& app, bool loose) const;

  /// The evaluation-wide optimizer configuration (fast enough for benches,
  /// faithful in structure: slack 20%, k = 4, log search).
  OptimizerConfig sompi_config() const;
  AdaptiveConfig adaptive_config() const;

  // --- Methods (each returns normalized results over the Monte Carlo) ----

  MethodResult eval_on_demand(const AppProfile& app, bool loose) const;
  MethodResult eval_marathe(const AppProfile& app, bool loose, bool optimize_type) const;
  MethodResult eval_spot_inf(const AppProfile& app, bool loose) const;
  MethodResult eval_spot_avg(const AppProfile& app, bool loose) const;
  /// Full SOMPI: the adaptive Algorithm-1 loop per Monte-Carlo start.
  MethodResult eval_sompi(const AppProfile& app, bool loose) const;
  /// SOMPI with a static plan (no update maintenance): the w/o-MT ablation.
  MethodResult eval_sompi_static(const AppProfile& app, bool loose) const;
  /// Ablations of §5.4.2 driven by optimizer-config variants.
  MethodResult eval_ablation(const AppProfile& app, bool loose,
                             const OptimizerConfig& config, const std::string& name) const;

  /// Evaluates an arbitrary planner through the standard Monte Carlo.
  MethodResult eval_planner(const AppProfile& app, bool loose, const std::string& name,
                            const MonteCarloRunner::Planner& planner) const;

 private:
  MonteCarloRunner runner() const;
  MethodResult normalized(const AppProfile& app, const std::string& name,
                          const MonteCarloStats& stats) const;

  Options options_;
  Catalog catalog_;
  ExecTimeEstimator est_;
  Market market_;
};

}  // namespace sompi
