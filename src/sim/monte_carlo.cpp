#include "sim/monte_carlo.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace sompi {

MonteCarloRunner::MonteCarloRunner(const Market* market, ReplayConfig replay_config,
                                   MonteCarloConfig config)
    : market_(market), replay_config_(replay_config), config_(config) {
  SOMPI_REQUIRE(market_ != nullptr);
  SOMPI_REQUIRE(config_.runs > 0);
  const double span = market_->trace({0, 0}).span_hours();
  SOMPI_REQUIRE_MSG(span > config_.lookback_h + config_.reserve_h,
                    "market trace too short for the lookback + reserve window");
}

double MonteCarloRunner::sample_start(Rng& rng) const {
  const double span = market_->trace({0, 0}).span_hours();
  return rng.uniform(config_.lookback_h, span - config_.reserve_h);
}

namespace {
MonteCarloStats finalize(std::vector<double> costs, std::vector<double> times,
                         std::size_t misses, std::size_t fallbacks) {
  MonteCarloStats s;
  s.runs = costs.size();
  s.cost = summarize(costs);
  s.time = summarize(times);
  s.deadline_miss_rate = static_cast<double>(misses) / static_cast<double>(s.runs);
  s.od_fallback_rate = static_cast<double>(fallbacks) / static_cast<double>(s.runs);
  return s;
}
}  // namespace

MonteCarloStats MonteCarloRunner::run_plan(const Plan& plan, double deadline_h) const {
  return run_planned([&plan](const Market&, double) { return plan; }, deadline_h);
}

MonteCarloStats MonteCarloRunner::run_planned(const Planner& planner,
                                              double deadline_h) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  const ReplayEngine engine(market_, replay_config_);
  Rng rng(config_.seed);
  std::vector<double> costs, times;
  costs.reserve(config_.runs);
  times.reserve(config_.runs);
  std::size_t misses = 0;
  std::size_t fallbacks = 0;

  MarketReplayOracle oracle(market_, replay_config_);
  for (std::size_t i = 0; i < config_.runs; ++i) {
    const double start_h = sample_start(rng);
    const Market history = oracle.history_at(start_h, config_.lookback_h);
    const Plan plan = planner(history, deadline_h);
    const ReplayResult r = engine.replay(plan, start_h);
    costs.push_back(r.cost_usd);
    times.push_back(r.time_h);
    if (r.time_h > deadline_h + 1e-9) ++misses;
    if (r.used_od_recovery) ++fallbacks;
  }
  return finalize(std::move(costs), std::move(times), misses, fallbacks);
}

MonteCarloStats MonteCarloRunner::run_adaptive(const AdaptiveEngine& engine,
                                               const AppProfile& app,
                                               double deadline_h) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  Rng rng(config_.seed);
  std::vector<double> costs, times;
  costs.reserve(config_.runs);
  times.reserve(config_.runs);
  std::size_t misses = 0;
  std::size_t fallbacks = 0;

  MarketReplayOracle oracle(market_, replay_config_);
  for (std::size_t i = 0; i < config_.runs; ++i) {
    const double start_h = sample_start(rng);
    const AdaptiveResult r = engine.run(app, oracle, start_h, deadline_h);
    costs.push_back(r.cost_usd);
    times.push_back(r.hours);
    if (!r.met_deadline) ++misses;
    if (r.fell_back_to_ondemand) ++fallbacks;
  }
  return finalize(std::move(costs), std::move(times), misses, fallbacks);
}

}  // namespace sompi
