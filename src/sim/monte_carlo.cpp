#include "sim/monte_carlo.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace sompi {

MonteCarloRunner::MonteCarloRunner(const Market* market, ReplayConfig replay_config,
                                   MonteCarloConfig config)
    : market_(market), replay_config_(replay_config), config_(config) {
  SOMPI_REQUIRE(market_ != nullptr);
  SOMPI_REQUIRE(config_.runs > 0);
  const double span = market_->trace({0, 0}).span_hours();
  SOMPI_REQUIRE_MSG(span > config_.lookback_h + config_.reserve_h,
                    "market trace too short for the lookback + reserve window");
}

double MonteCarloRunner::sample_start(Rng& rng) const {
  const double span = market_->trace({0, 0}).span_hours();
  return rng.uniform(config_.lookback_h, span - config_.reserve_h);
}

Rng MonteCarloRunner::run_rng(std::size_t run_index) const {
  std::uint64_t state = config_.seed ^ static_cast<std::uint64_t>(run_index);
  return Rng(splitmix64(state));
}

namespace {
MonteCarloStats finalize(const std::vector<double>& costs, const std::vector<double>& times,
                         const std::vector<unsigned char>& missed,
                         const std::vector<unsigned char>& fell_back) {
  std::size_t misses = 0;
  std::size_t fallbacks = 0;
  for (unsigned char m : missed) misses += m;
  for (unsigned char f : fell_back) fallbacks += f;
  MonteCarloStats s;
  s.runs = costs.size();
  s.cost = summarize(costs);
  s.time = summarize(times);
  s.deadline_miss_rate = static_cast<double>(misses) / static_cast<double>(s.runs);
  s.od_fallback_rate = static_cast<double>(fallbacks) / static_cast<double>(s.runs);
  return s;
}
}  // namespace

MonteCarloStats MonteCarloRunner::run_plan(const Plan& plan, double deadline_h) const {
  return run_planned([&plan](const Market&, double) { return plan; }, deadline_h);
}

MonteCarloStats MonteCarloRunner::run_planned(const Planner& planner,
                                              double deadline_h) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  const std::size_t n = config_.runs;
  std::vector<double> costs(n, 0.0), times(n, 0.0);
  std::vector<unsigned char> missed(n, 0), fell_back(n, 0);

  // Each run is self-contained: its own Rng (counter-based reseeding), its
  // own replay engine and history oracle. Results land at the run's index,
  // so the summaries below never depend on execution order.
  parallel_for(n, config_.threads, [&](std::size_t i) {
    Rng rng = run_rng(i);
    const double start_h = sample_start(rng);
    MarketReplayOracle oracle(market_, replay_config_);
    const Market history = oracle.history_at(start_h, config_.lookback_h);
    const Plan plan = planner(history, deadline_h);
    const ReplayEngine engine(market_, replay_config_);
    const ReplayResult r = engine.replay(plan, start_h);
    costs[i] = r.cost_usd;
    times[i] = r.time_h;
    missed[i] = r.time_h > deadline_h + 1e-9 ? 1 : 0;
    fell_back[i] = r.used_od_recovery ? 1 : 0;
  });
  return finalize(costs, times, missed, fell_back);
}

MonteCarloStats MonteCarloRunner::run_adaptive(const AdaptiveEngine& engine,
                                               const AppProfile& app,
                                               double deadline_h) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  const std::size_t n = config_.runs;
  std::vector<double> costs(n, 0.0), times(n, 0.0);
  std::vector<unsigned char> missed(n, 0), fell_back(n, 0);

  parallel_for(n, config_.threads, [&](std::size_t i) {
    Rng rng = run_rng(i);
    const double start_h = sample_start(rng);
    MarketReplayOracle oracle(market_, replay_config_);
    const AdaptiveResult r = engine.run(app, oracle, start_h, deadline_h);
    costs[i] = r.cost_usd;
    times[i] = r.hours;
    missed[i] = r.met_deadline ? 0 : 1;
    fell_back[i] = r.fell_back_to_ondemand ? 1 : 0;
  });
  return finalize(costs, times, missed, fell_back);
}

}  // namespace sompi
