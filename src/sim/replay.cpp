#include "sim/replay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/schedule.h"

namespace sompi {

ReplayEngine::ReplayEngine(const Market* market, ReplayConfig config)
    : market_(market), config_(config) {
  SOMPI_REQUIRE(market_ != nullptr);
}

namespace {

/// Mutable per-group replay state.
struct GroupState {
  GroupSchedule sched;
  const GroupPlan* plan;
  bool alive = true;
  bool completed = false;
  bool killed = false;
  double death_wall = 0.0;  ///< wall steps at death (valid when killed)
  double end_wall = 0.0;    ///< wall steps when this group stopped running
  double cost = 0.0;
  double last_price = 0.0;  ///< spot price of the last step it ran
};

/// Hour-granularity adjustment applied once per group lifetime: the
/// per-step accrual is proportional; whole-hour billing rounds the final
/// partial hour up (user-terminated) or refunds it (provider kill).
double hourly_adjustment(BillingModel model, double lifetime_h, double last_price,
                         int instances, bool provider_killed) {
  switch (model) {
    case BillingModel::kProportional:
      return 0.0;
    case BillingModel::kHourlyRoundUp:
      return (std::ceil(lifetime_h) - lifetime_h) * last_price * instances;
    case BillingModel::kHourlyProviderKillFree:
      if (provider_killed)
        return -(lifetime_h - std::floor(lifetime_h)) * last_price * instances;
      return (std::ceil(lifetime_h) - lifetime_h) * last_price * instances;
  }
  return 0.0;
}

}  // namespace

ReplayResult ReplayEngine::replay(const Plan& plan, double start_h) const {
  SOMPI_REQUIRE(start_h >= 0.0);
  const double h = plan.step_hours;
  ReplayResult r;

  if (plan.groups.empty()) {
    // Pure on-demand run.
    r.od_cost_usd = plan.od.rate_usd_h * plan.od.t_h;
    r.cost_usd = r.od_cost_usd;
    r.time_h = plan.od.t_h;
    r.used_od_recovery = true;
    r.recovered_ratio = 1.0;
    return r;
  }

  std::vector<GroupState> groups;
  groups.reserve(plan.groups.size());
  for (const auto& g : plan.groups)
    groups.push_back(GroupState{GroupSchedule(g.t_steps, g.f_steps, g.o_steps, g.r_steps), &g});

  // --- Spot phase: march steps until one group completes or all die. ---
  double complete_wall = std::numeric_limits<double>::infinity();
  std::size_t alive = groups.size();
  for (std::size_t t = 0; alive > 0; ++t) {
    const double now_h = start_h + static_cast<double>(t) * h;
    for (auto& gs : groups) {
      if (!gs.alive) continue;
      const double w = gs.sched.wall_duration();
      const double price = market_->trace(gs.plan->spec).price_at_hours(now_h);
      const bool forced_kill =
          config_.faults != nullptr && config_.faults->spot_kill(gs.plan->name, t);
      if (price > gs.plan->bid_usd || forced_kill) {
        // Out-of-bid at the start of step t: the group ran t steps.
        gs.alive = false;
        gs.killed = true;
        gs.death_wall = static_cast<double>(t);
        gs.end_wall = gs.death_wall;
        --alive;
        continue;
      }
      // The group runs (the rest of) this step; a completing group is
      // billed only up to its exact wall duration.
      const double step_len = std::min(1.0, w - static_cast<double>(t));
      gs.cost += price * step_len * h * gs.plan->instances;
      gs.last_price = price;
      if (static_cast<double>(t) + 1.0 >= w) {
        gs.alive = false;
        gs.completed = true;
        gs.end_wall = w;
        complete_wall = std::min(complete_wall, w);
        --alive;
      }
    }
    if (complete_wall < std::numeric_limits<double>::infinity()) {
      // Hybrid-execution rule: the moment one replica finishes, the rest
      // stop accruing cost (they are already billed through step t).
      for (auto& gs : groups) {
        if (gs.alive) {
          gs.alive = false;
          gs.end_wall = static_cast<double>(t) + 1.0;
        }
      }
      alive = 0;
    }
  }
  for (auto& gs : groups)
    gs.cost += hourly_adjustment(config_.billing, gs.end_wall * h, gs.last_price,
                                 gs.plan->instances, gs.killed);

  // --- Aggregate group fates. ---
  double max_end_wall = 0.0;
  double best_ratio = 1.0;
  bool any_complete = false;
  for (const auto& gs : groups) {
    GroupRunStat s;
    s.name = gs.plan->name;
    s.lifetime_h = gs.end_wall * h;
    s.completed = gs.completed;
    s.killed = gs.killed;
    s.cost_usd = gs.cost;
    s.checkpoints = gs.sched.checkpoints_by(gs.end_wall);
    s.saved_fraction =
        static_cast<double>(gs.sched.saved_by(gs.end_wall)) / gs.plan->t_steps;
    r.groups.push_back(std::move(s));

    r.spot_cost_usd += gs.cost;
    max_end_wall = std::max(max_end_wall, gs.end_wall);
    any_complete = any_complete || gs.completed;
    if (gs.killed) best_ratio = std::min(best_ratio, gs.sched.ratio_at(gs.death_wall));
  }

  if (any_complete) {
    r.completed_on_spot = true;
    r.time_h = complete_wall * h;
  } else {
    // All replicas died: recover the most advanced checkpoint on demand.
    // The fallback starts once the last replica is gone (until then a live
    // replica might still have completed).
    r.used_od_recovery = true;
    r.recovered_ratio = best_ratio;
    r.od_cost_usd = plan.od.rate_usd_h * plan.od.t_h * best_ratio;
    r.time_h = max_end_wall * h + plan.od.t_h * best_ratio;
  }

  // Checkpoint storage: one retained snapshot of the whole application
  // state for the duration of the run (paper: ≪ 0.1% of the total).
  r.storage_cost_usd =
      plan.state_gb * config_.s3_usd_gb_month * (r.time_h / (30.0 * 24.0));

  r.cost_usd = r.spot_cost_usd + r.od_cost_usd + r.storage_cost_usd;
  return r;
}

WindowOutcome ReplayEngine::replay_window(const Plan& plan, double start_h,
                                          double window_h) const {
  SOMPI_REQUIRE(window_h > 0.0);
  const double h = plan.step_hours;
  WindowOutcome out;
  if (plan.groups.empty()) return out;

  std::vector<GroupState> groups;
  groups.reserve(plan.groups.size());
  for (const auto& g : plan.groups)
    groups.push_back(GroupState{GroupSchedule(g.t_steps, g.f_steps, g.o_steps, g.r_steps), &g});

  const auto window_steps = static_cast<std::size_t>(std::floor(window_h / h));
  double complete_wall = std::numeric_limits<double>::infinity();
  std::size_t alive = groups.size();
  std::size_t t = 0;
  for (; t < window_steps && alive > 0; ++t) {
    const double now_h = start_h + static_cast<double>(t) * h;
    for (auto& gs : groups) {
      if (!gs.alive) continue;
      const double w = gs.sched.wall_duration();
      const double price = market_->trace(gs.plan->spec).price_at_hours(now_h);
      const bool forced_kill =
          config_.faults != nullptr && config_.faults->spot_kill(gs.plan->name, t);
      if (price > gs.plan->bid_usd || forced_kill) {
        gs.alive = false;
        gs.killed = true;
        gs.death_wall = static_cast<double>(t);
        gs.end_wall = gs.death_wall;
        --alive;
        continue;
      }
      const double step_len = std::min(1.0, w - static_cast<double>(t));
      gs.cost += price * step_len * h * gs.plan->instances;
      gs.last_price = price;
      if (static_cast<double>(t) + 1.0 >= w) {
        gs.alive = false;
        gs.completed = true;
        gs.end_wall = w;
        complete_wall = std::min(complete_wall, w);
        --alive;
      }
    }
    if (complete_wall < std::numeric_limits<double>::infinity()) {
      for (auto& gs : groups) {
        if (gs.alive) {
          gs.alive = false;
          gs.end_wall = static_cast<double>(t) + 1.0;
        }
      }
      alive = 0;
      ++t;
      break;
    }
  }

  // Window boundary (Algorithm 1 line 22): the most advanced survivor
  // checkpoints its full in-flight progress; dead groups contribute their
  // last durable checkpoint.
  double best_fraction = 0.0;
  double end_wall = 0.0;
  for (auto& gs : groups) {
    double fraction;
    if (gs.completed) {
      fraction = 1.0;
    } else if (gs.killed) {
      fraction = static_cast<double>(gs.sched.saved_by(gs.death_wall)) / gs.plan->t_steps;
    } else {
      // Still alive at the boundary: checkpoint now (bill one dump at the
      // current spot price; the dump itself rides into the next window).
      gs.end_wall = static_cast<double>(t);
      fraction = gs.sched.progress_by(gs.end_wall) / gs.plan->t_steps;
      const double now_h = start_h + gs.end_wall * h;
      const double price = market_->trace(gs.plan->spec).price_at_hours(now_h);
      gs.cost += price * gs.plan->o_steps * h * gs.plan->instances;
    }
    if (gs.killed || gs.completed)
      gs.cost += hourly_adjustment(config_.billing, gs.end_wall * h, gs.last_price,
                                   gs.plan->instances, gs.killed);
    best_fraction = std::max(best_fraction, fraction);
    end_wall = std::max(end_wall, std::min(gs.end_wall, static_cast<double>(t)));
    out.cost_usd += gs.cost;
  }

  out.completed = complete_wall < std::numeric_limits<double>::infinity();
  out.fraction_done = out.completed ? 1.0 : best_fraction;
  out.hours_used = (out.completed ? complete_wall : end_wall) * h;
  // Every window consumes at least one step of wall time.
  out.hours_used = std::max(out.hours_used, h);
  return out;
}

MarketReplayOracle::MarketReplayOracle(const Market* market, ReplayConfig config)
    : market_(market), engine_(market, config) {
  SOMPI_REQUIRE(market_ != nullptr);
}

WindowOutcome MarketReplayOracle::run_window(const Plan& plan, double start_h,
                                             double window_h) {
  return engine_.replay_window(plan, start_h, window_h);
}

Market MarketReplayOracle::history_at(double now_h, double lookback_h) {
  SOMPI_REQUIRE(now_h >= 0.0);
  // All traces in a market share one step size.
  const double step_h = market_->trace({0, 0}).step_hours();
  const auto now_step = static_cast<std::size_t>(now_h / step_h);
  const double from_h = std::max(0.0, now_h - lookback_h);
  const auto from_step = static_cast<std::size_t>(from_h / step_h);
  return market_->window(from_step, now_step - from_step);
}

}  // namespace sompi
