#include "sim/live.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/schedule.h"
#include "minimpi/runtime.h"

namespace sompi {

LiveExecutor::LiveExecutor(const Market* market) : market_(market) {
  SOMPI_REQUIRE(market_ != nullptr);
}

LiveRunResult LiveExecutor::execute(const Plan& plan, double start_h, int world_size,
                                    int app_iterations, const AppRunner& runner,
                                    StorageBackend& store) const {
  SOMPI_REQUIRE(plan.uses_spot());
  SOMPI_REQUIRE(world_size >= 1);
  SOMPI_REQUIRE(app_iterations >= 1);

  LiveRunResult result;

  for (std::size_t i = 0; i < plan.groups.size() && !result.completed_on_spot; ++i) {
    const GroupPlan& g = plan.groups[i];
    const GroupSchedule sched(g.t_steps, g.f_steps, g.o_steps, g.r_steps);
    const SpotTrace& trace = market_->trace(g.spec);
    const auto start_step = static_cast<std::size_t>(start_h / trace.step_hours());

    // When does this group go out of bid?
    const std::size_t kill_step = trace.first_exceed(start_step, g.bid_usd);
    const bool dies_mid_run =
        kill_step != SpotTrace::kNever &&
        static_cast<double>(kill_step) < sched.wall_duration();

    // Map the plan's checkpoint interval and the kill instant to app
    // iterations: F_steps of T_steps ≙ the same fraction of iterations.
    const int ck_every = std::max(
        1, static_cast<int>(std::lround(static_cast<double>(g.f_steps) * app_iterations /
                                        g.t_steps)));
    const double killed_fraction =
        dies_mid_run ? sched.progress_by(static_cast<double>(kill_step)) /
                           static_cast<double>(g.t_steps)
                     : 1.0;
    const auto kill_iterations =
        static_cast<std::uint64_t>(std::floor(killed_fraction * app_iterations));

    LiveGroupOutcome outcome;
    outcome.name = g.name;
    outcome.kill_step = dies_mid_run ? kill_step : 0;

    const std::string run_id = "group" + std::to_string(i);
    apps::AppResult app_result;
    mpi::Runtime rt(world_size);
    if (dies_mid_run) {
      // +world_size/2: land the kill mid-iteration, not on the boundary.
      rt.failures().arm_after_ticks(kill_iterations * static_cast<std::uint64_t>(world_size) +
                                    static_cast<std::uint64_t>(world_size) / 2 + 1);
    }
    rt.launch([&](mpi::Comm& comm) {
      Checkpointer ck(&store, run_id);
      const apps::AppResult r = runner(comm, &ck, ck_every);
      if (comm.rank() == 0) app_result = r;  // single writer; join orders it
    });
    const mpi::RunResult run = rt.join();
    SOMPI_ASSERT_MSG(run.errors.empty(),
                     run.errors.empty() ? "" : ("live group failed: " + run.errors.front()));

    outcome.killed = run.killed;
    outcome.completed = run.completed;
    if (run.completed) {
      result.completed_on_spot = true;
      result.checksum = app_result.checksum;
      result.total_iterations_run += app_result.iterations_run;
    }
    outcome.checkpoints_saved =
        Checkpointer(&store, run_id).latest_version() + 1;
    result.groups.push_back(std::move(outcome));
  }

  if (!result.completed_on_spot) {
    // Every replica died: restore the most advanced checkpoint and finish
    // kill-free (the on-demand tier).
    std::size_t best = 0;
    int best_versions = -1;
    for (std::size_t i = 0; i < result.groups.size(); ++i) {
      if (result.groups[i].checkpoints_saved > best_versions) {
        best_versions = result.groups[i].checkpoints_saved;
        best = i;
      }
    }
    const std::string run_id = "group" + std::to_string(best);
    apps::AppResult app_result;
    const mpi::RunResult run = mpi::Runtime::run(world_size, [&](mpi::Comm& comm) {
      Checkpointer ck(&store, run_id);
      const apps::AppResult r = runner(comm, &ck, /*checkpoint_every=*/0);
      if (comm.rank() == 0) app_result = r;
    });
    SOMPI_ASSERT_MSG(run.completed, "on-demand recovery must complete");
    result.recovered_on_demand = true;
    result.checksum = app_result.checksum;
    result.total_iterations_run += app_result.iterations_run;
  }

  return result;
}

}  // namespace sompi
