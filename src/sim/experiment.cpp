#include "sim/experiment.h"

#include <cstdlib>

#include "common/error.h"

namespace sompi {

Experiment::Options Experiment::defaults() {
  Options o;
  if (const char* runs = std::getenv("SOMPI_BENCH_RUNS")) {
    const long parsed = std::strtol(runs, nullptr, 10);
    if (parsed > 0) o.runs = static_cast<std::size_t>(parsed);
  }
  return o;
}

Experiment::Experiment(Options options)
    : options_(options),
      catalog_(paper_catalog()),
      market_(generate_market(catalog_, paper_market_profile(catalog_), options_.market_days,
                              options_.step_hours, options_.seed)) {}

OnDemandChoice Experiment::baseline(const AppProfile& app) const {
  return OnDemandSelector(&catalog_, &est_).baseline(app);
}

double Experiment::baseline_cost(const AppProfile& app) const {
  return baseline(app).full_cost_usd();
}

double Experiment::baseline_time(const AppProfile& app) const { return baseline(app).t_h; }

double Experiment::deadline(const AppProfile& app, bool loose) const {
  return baseline_time(app) * (loose ? options_.loose : options_.tight);
}

OptimizerConfig Experiment::sompi_config() const {
  OptimizerConfig c = sompi_optimizer_config();  // slack 20 %, k = 4
  c.max_candidates = 6;
  c.setup.step_hours = options_.step_hours;
  c.setup.log_levels = 6;
  c.setup.failure.samples = 1000;
  c.ratio_bins = 96;
  return c;
}

AdaptiveConfig Experiment::adaptive_config() const {
  AdaptiveConfig c = sompi_adaptive_config();  // T_m = 15 h, lookback 48 h
  c.opt = sompi_config();
  return c;
}

MonteCarloRunner Experiment::runner() const {
  MonteCarloConfig mc;
  mc.runs = options_.runs;
  mc.lookback_h = 48.0;
  mc.reserve_h = 96.0;
  mc.seed = options_.seed ^ 0xEC2;
  return MonteCarloRunner(&market_, ReplayConfig{}, mc);
}

MethodResult Experiment::normalized(const AppProfile& app, const std::string& name,
                                    const MonteCarloStats& stats) const {
  MethodResult r;
  r.method = name;
  const double base_cost = baseline_cost(app);
  const double base_time = baseline_time(app);
  r.norm_cost = stats.cost.mean / base_cost;
  r.norm_cost_std = stats.cost.stddev / base_cost;
  r.norm_time = stats.time.mean / base_time;
  r.miss_rate = stats.deadline_miss_rate;
  return r;
}

MethodResult Experiment::eval_planner(const AppProfile& app, bool loose,
                                      const std::string& name,
                                      const MonteCarloRunner::Planner& planner) const {
  const double dl = deadline(app, loose);
  return normalized(app, name, runner().run_planned(planner, dl));
}

MethodResult Experiment::eval_on_demand(const AppProfile& app, bool loose) const {
  const BaselineFactory factory(&catalog_, &est_, sompi_config().setup);
  const Plan plan = factory.on_demand_only(app, deadline(app, loose));
  return normalized(app, "On-demand", runner().run_plan(plan, deadline(app, loose)));
}

MethodResult Experiment::eval_marathe(const AppProfile& app, bool loose,
                                      bool optimize_type) const {
  const BaselineFactory factory(&catalog_, &est_, sompi_config().setup);
  return eval_planner(app, loose, optimize_type ? "Marathe-Opt" : "Marathe",
                      [&factory, &app, optimize_type](const Market& history, double dl) {
                        return factory.marathe(app, history, dl, optimize_type);
                      });
}

MethodResult Experiment::eval_spot_inf(const AppProfile& app, bool loose) const {
  const BaselineFactory factory(&catalog_, &est_, sompi_config().setup);
  return eval_planner(app, loose, "Spot-Inf",
                      [&factory, &app](const Market& history, double dl) {
                        return factory.spot_inf(app, history, dl);
                      });
}

MethodResult Experiment::eval_spot_avg(const AppProfile& app, bool loose) const {
  const BaselineFactory factory(&catalog_, &est_, sompi_config().setup);
  return eval_planner(app, loose, "Spot-Avg",
                      [&factory, &app](const Market& history, double dl) {
                        return factory.spot_avg(app, history, dl);
                      });
}

MethodResult Experiment::eval_sompi(const AppProfile& app, bool loose) const {
  const AdaptiveEngine engine(&catalog_, &est_, adaptive_config());
  const double dl = deadline(app, loose);
  return normalized(app, "SOMPI", runner().run_adaptive(engine, app, dl));
}

MethodResult Experiment::eval_sompi_static(const AppProfile& app, bool loose) const {
  // w/o-MT: the adaptive execution loop (windows, on-demand guard) still
  // runs, but the initial plan is never refreshed with new price history.
  AdaptiveConfig ad = adaptive_config();
  ad.update_maintenance = false;
  const AdaptiveEngine engine(&catalog_, &est_, ad);
  const double dl = deadline(app, loose);
  MethodResult r = normalized(app, "w/o-MT", runner().run_adaptive(engine, app, dl));
  return r;
}

MethodResult Experiment::eval_ablation(const AppProfile& app, bool loose,
                                       const OptimizerConfig& config,
                                       const std::string& name) const {
  OptimizerConfig cfg = config;
  // Keep the bench-speed knobs; the ablation only changes mechanisms.
  cfg.max_candidates = sompi_config().max_candidates;
  cfg.setup = sompi_config().setup;
  cfg.ratio_bins = sompi_config().ratio_bins;
  AdaptiveConfig ad = adaptive_config();
  ad.opt = cfg;
  const AdaptiveEngine engine(&catalog_, &est_, ad);
  const double dl = deadline(app, loose);
  MethodResult r = normalized(app, name, runner().run_adaptive(engine, app, dl));
  return r;
}

}  // namespace sompi
