#include "net/pipe.h"

#include <algorithm>

namespace sompi::net {

bool ByteChannel::write(std::string_view bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Admission is all-or-nothing per write: wait for the level to fall below
  // capacity, then append the whole chunk (a bounded overshoot of one write,
  // which keeps writes atomic — no interleaving of two writers' bytes).
  writable_.wait(lock, [&] { return closed_ || buffer_.size() < capacity_; });
  if (closed_) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  readable_.notify_all();
  return true;
}

std::string ByteChannel::read(std::size_t max_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  readable_.wait(lock, [&] { return closed_ || !buffer_.empty(); });
  if (buffer_.empty()) return {};  // closed and drained
  const std::size_t n = std::min(max_bytes, buffer_.size());
  std::string out(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  writable_.notify_all();
  return out;
}

void ByteChannel::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

bool ByteChannel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

DuplexPipe::DuplexPipe(Config config)
    : a_to_b_(std::make_unique<ByteChannel>(config.capacity_bytes)),
      b_to_a_(std::make_unique<ByteChannel>(config.capacity_bytes)),
      a_(std::make_unique<PipeEndpoint>(a_to_b_.get(), b_to_a_.get(), config.faults,
                                        config.label + "/a")),
      b_(std::make_unique<PipeEndpoint>(b_to_a_.get(), a_to_b_.get(), config.faults,
                                        config.label + "/b")) {}

bool PipeEndpoint::write(std::string_view bytes) {
  if (faults_ != nullptr) {
    if (faults_->fires(fi::Channel::kWireDrop, chaos_key_)) {
      close();
      return false;
    }
    std::uint64_t op = 0;
    if (faults_->fires(fi::Channel::kWireTornWrite, chaos_key_, &op)) {
      const std::size_t keep = faults_->torn_length(chaos_key_, op, bytes.size());
      if (keep > 0) out_->write(bytes.substr(0, keep));
      close();
      return false;
    }
  }
  return out_->write(bytes);
}

std::string PipeEndpoint::read(std::size_t max_bytes) {
  std::size_t cap = max_bytes;
  std::uint64_t op = 0;
  if (faults_ != nullptr &&
      faults_->fires(fi::Channel::kWireShortRead, chaos_key_, &op)) {
    // Maximal fragmentation: force the reader's reassembly path without
    // losing a byte. 1–4 bytes splits headers, lengths and CRCs alike.
    cap = std::min<std::size_t>(cap, 1 + op % 4);
  }
  return in_->read(std::max<std::size_t>(cap, 1));
}

void PipeEndpoint::close() {
  out_->close();
  in_->close();
}

}  // namespace sompi::net
