// PlanClient — the router-aware wire client (DESIGN.md §15).
//
// A client opens ONE connection per shard and builds its OWN ShardRouter
// from the tier's (shards, vnodes, salt) — routing is a pure function of
// that config, so an independently constructed ring agrees with the server's
// on every key. In kRouted mode each request is canonicalized locally and
// sent down the connection of its ring home: it lands where it lives, the
// tier's forwarding counter stays 0, and the hot path never pays a cross-
// shard hop. kSpray round-robins instead (what a router-oblivious load
// balancer does) — every misrouted request shows up in the tier's
// forwarded counter, which is exactly how the routing-quality gate measures
// the difference.
//
// The API mirrors the in-process service: blocking plan() and a
// submit/harvest/drain async-batch surface. Correlation is by client-chosen
// request id; responses may arrive in any order and a dropped connection
// (chaos or server shutdown) fails only the requests outstanding on it —
// each becomes an error completion, nothing blocks forever.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/server.h"
#include "net/wire.h"
#include "service/sharded/shard_router.h"

namespace sompi::net {

enum class ClientMode {
  kRouted,  ///< ring-route each request to its home shard's connection
  kSpray,   ///< round-robin across connections (router-oblivious baseline)
};

struct ClientCompletion {
  std::uint64_t request_id = 0;
  PlanResponse response;
  /// Non-empty iff the request failed at the wire (error frame, malformed
  /// response, dropped connection); response.plan is null then.
  std::string error;
};

class PlanClient {
 public:
  /// Dials one connection per shard on `server` (borrowed; must outlive the
  /// client or be shut down first — a shutdown server just fails requests).
  PlanClient(PlanServerLoop* server, ClientMode mode);
  ~PlanClient();

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  /// Blocking round trip. Throws std::runtime_error on a wire failure.
  PlanResponse plan(const PlanRequest& request);

  /// Async batch surface, mirroring AsyncBatchService.
  std::uint64_t submit(const PlanRequest& request);
  std::vector<std::uint64_t> submit_batch(const std::vector<PlanRequest>& requests);
  /// Finished completions, each exactly once (0 = all available). Non-blocking.
  std::vector<ClientCompletion> harvest(std::size_t max = 0);
  /// Blocks until every submitted request has a completion waiting.
  void drain();

  /// Server-side tier + wire counters via a StatsRequest round trip.
  /// Throws std::runtime_error on a wire failure.
  WireTierStats server_stats();

  /// This client's codec rejects (torn/dropped responses under chaos).
  WireCodecStats codec_stats() const;

  std::size_t connection_count() const { return connections_.size(); }
  const ShardRouter& router() const { return router_; }

  /// The connection index request would be sent on (test/diagnostic surface;
  /// does not consume a request id or round-robin slot).
  std::size_t pick_shard(const PlanRequest& request) const;

 private:
  struct Connection {
    PipeEndpoint* endpoint = nullptr;  ///< owned by the server loop
    std::mutex write_mutex;
    std::thread reader;
    /// Request ids sent on this connection and not yet completed; a drop
    /// fails exactly these. Guarded by the client mutex_.
    std::set<std::uint64_t> outstanding;
    WireCodecStats folded;  ///< decoder counters already in codec_stats_
  };

  void reader_loop(std::size_t index);
  /// Parks a completion and wakes waiters. Guarded internally.
  void complete(std::uint64_t request_id, ClientCompletion completion);
  /// Bulk variant: parks every completion under ONE lock acquisition and
  /// wakes waiters once — the reader calls this per read chunk, not per
  /// frame, so a batch of responses costs one wakeup instead of N.
  void complete_many(std::vector<ClientCompletion> completions);
  std::uint64_t send(std::size_t shard, MsgType type, std::string_view payload);
  /// Ring home of a request, memoized by its encoded payload bytes: repeat
  /// requests (the warm-hit common case) skip re-canonicalization and pay a
  /// hash lookup instead. Byte-different encodings of the same canonical
  /// request simply occupy two memo slots — both map to the same home.
  std::size_t route_for(const std::string& payload, const PlanRequest& request) const;
  /// Waits for a specific id (blocking plan / stats path), removing it from
  /// the harvest stream.
  ClientCompletion await(std::uint64_t request_id);

  ShardRouter router_;
  ClientMode mode_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> spray_cursor_{0};

  /// encoded PlanRequest payload → ring home (see route_for). Guarded by
  /// route_mutex_; bounded by wholesale clear at kRouteMemoCapacity.
  static constexpr std::size_t kRouteMemoCapacity = 4096;
  mutable std::mutex route_mutex_;
  mutable std::unordered_map<std::string, std::size_t> route_memo_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::map<std::uint64_t, ClientCompletion> done_;
  /// Stats responses route here instead of done_ (different payload type).
  std::map<std::uint64_t, WireTierStats> stats_done_;
  std::set<std::uint64_t> awaited_;  ///< ids claimed by await(); skip harvest
  WireCodecStats codec_stats_;
  bool closing_ = false;
};

}  // namespace sompi::net
