#include "net/client.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "service/request.h"

namespace sompi::net {

namespace {

void fold_codec_delta(WireCodecStats* aggregate, WireCodecStats* folded,
                      const WireCodecStats& now) {
  WireCodecStats delta = now;
  delta.frames_decoded -= folded->frames_decoded;
  delta.bytes_consumed -= folded->bytes_consumed;
  delta.bad_magic -= folded->bad_magic;
  delta.short_frame -= folded->short_frame;
  delta.overlong_frame -= folded->overlong_frame;
  delta.crc_mismatch -= folded->crc_mismatch;
  delta.unknown_version -= folded->unknown_version;
  delta.unknown_type -= folded->unknown_type;
  delta.bad_payload -= folded->bad_payload;
  *aggregate += delta;
  *folded = now;
}

}  // namespace

PlanClient::PlanClient(PlanServerLoop* server, ClientMode mode)
    : router_(RouterConfig{server->tier()->config().shards, server->tier()->config().vnodes,
                           server->tier()->config().salt}),
      mode_(mode) {
  // One connection per shard; connection i is shard i's "listener".
  const std::size_t shards = server->tier()->shard_count();
  connections_.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    auto connection = std::make_unique<Connection>();
    connection->endpoint = server->connect(shard);
    connections_.push_back(std::move(connection));
  }
  for (std::size_t i = 0; i < connections_.size(); ++i)
    connections_[i]->reader = std::thread([this, i] { reader_loop(i); });
}

PlanClient::~PlanClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  for (const auto& connection : connections_) connection->endpoint->close();
  for (const auto& connection : connections_)
    if (connection->reader.joinable()) connection->reader.join();
}

std::size_t PlanClient::pick_shard(const PlanRequest& request) const {
  if (mode_ == ClientMode::kSpray)
    return static_cast<std::size_t>(spray_cursor_.load(std::memory_order_relaxed)) %
           connections_.size();
  return route_for(encode_plan_request(request), request);
}

std::size_t PlanClient::route_for(const std::string& payload,
                                  const PlanRequest& request) const {
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (const auto it = route_memo_.find(payload); it != route_memo_.end())
      return it->second;
  }
  std::size_t shard;
  // A request the server will reject (invalid deadline etc.) cannot be
  // canonicalized locally; it still needs SOME connection to be rejected on.
  try {
    shard = router_.route(canonical_key(canonicalized(request)));
  } catch (...) {
    shard = 0;
  }
  std::lock_guard<std::mutex> lock(route_mutex_);
  if (route_memo_.size() >= kRouteMemoCapacity) route_memo_.clear();
  route_memo_.emplace(payload, shard);
  return shard;
}

std::uint64_t PlanClient::send(std::size_t shard, MsgType type, std::string_view payload) {
  Connection& connection = *connections_[shard];
  const std::uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SOMPI_REQUIRE_MSG(!closing_, "send() on a closing client");
    connection.outstanding.insert(id);
  }
  const std::string bytes = encode_frame(type, id, payload);
  bool wrote;
  {
    std::lock_guard<std::mutex> lock(connection.write_mutex);
    wrote = connection.endpoint->write(bytes);
  }
  if (!wrote) {
    ClientCompletion failed;
    failed.request_id = id;
    failed.error = "connection dropped (write)";
    complete(id, std::move(failed));
  }
  return id;
}

std::uint64_t PlanClient::submit(const PlanRequest& request) {
  const std::string payload = encode_plan_request(request);
  const std::size_t shard =
      mode_ == ClientMode::kSpray
          ? static_cast<std::size_t>(
                spray_cursor_.fetch_add(1, std::memory_order_relaxed)) %
                connections_.size()
          : route_for(payload, request);
  return send(shard, MsgType::kPlanRequest, payload);
}

std::vector<std::uint64_t> PlanClient::submit_batch(const std::vector<PlanRequest>& requests) {
  // Coalesce per connection: encode every frame first, register all ids,
  // then ONE pipe write per shard — one server-reader wakeup per shard per
  // batch instead of one per request.
  std::vector<std::uint64_t> ids(requests.size());
  std::vector<std::size_t> shards(requests.size());
  std::vector<std::string> buffers(connections_.size());
  std::vector<std::vector<std::uint64_t>> batch_ids(connections_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string payload = encode_plan_request(requests[i]);
    const std::size_t shard =
        mode_ == ClientMode::kSpray
            ? static_cast<std::size_t>(
                  spray_cursor_.fetch_add(1, std::memory_order_relaxed)) %
                  connections_.size()
            : route_for(payload, requests[i]);
    const std::uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    ids[i] = id;
    shards[i] = shard;
    buffers[shard] += encode_frame(MsgType::kPlanRequest, id, payload);
    batch_ids[shard].push_back(id);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SOMPI_REQUIRE_MSG(!closing_, "submit_batch() on a closing client");
    for (std::size_t i = 0; i < requests.size(); ++i)
      connections_[shards[i]]->outstanding.insert(ids[i]);
  }
  for (std::size_t shard = 0; shard < connections_.size(); ++shard) {
    if (buffers[shard].empty()) continue;
    bool wrote;
    {
      std::lock_guard<std::mutex> lock(connections_[shard]->write_mutex);
      wrote = connections_[shard]->endpoint->write(buffers[shard]);
    }
    if (wrote) continue;
    for (const std::uint64_t id : batch_ids[shard]) {
      ClientCompletion failed;
      failed.request_id = id;
      failed.error = "connection dropped (write)";
      complete(id, std::move(failed));
    }
  }
  return ids;
}

PlanResponse PlanClient::plan(const PlanRequest& request) {
  const std::uint64_t id = submit(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    awaited_.insert(id);
  }
  ClientCompletion completion = await(id);
  if (!completion.error.empty()) throw std::runtime_error(completion.error);
  return std::move(completion.response);
}

WireTierStats PlanClient::server_stats() {
  const std::uint64_t id = send(0, MsgType::kStatsRequest, encode_stats_request());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    awaited_.insert(id);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return stats_done_.count(id) != 0 || done_.count(id) != 0;
  });
  awaited_.erase(id);
  if (const auto it = stats_done_.find(id); it != stats_done_.end()) {
    WireTierStats stats = it->second;
    stats_done_.erase(it);
    return stats;
  }
  ClientCompletion completion = std::move(done_.at(id));
  done_.erase(id);
  throw std::runtime_error(completion.error.empty() ? "stats request failed"
                                                    : completion.error);
}

ClientCompletion PlanClient::await(std::uint64_t request_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return done_.count(request_id) != 0; });
  ClientCompletion completion = std::move(done_.at(request_id));
  done_.erase(request_id);
  awaited_.erase(request_id);
  return completion;
}

std::vector<ClientCompletion> PlanClient::harvest(std::size_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ClientCompletion> out;
  for (auto it = done_.begin(); it != done_.end();) {
    if (max != 0 && out.size() >= max) break;
    if (awaited_.count(it->first) != 0) {
      ++it;
      continue;
    }
    out.push_back(std::move(it->second));
    it = done_.erase(it);
  }
  return out;
}

void PlanClient::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return std::all_of(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->outstanding.empty();
                       });
  });
}

WireCodecStats PlanClient::codec_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return codec_stats_;
}

void PlanClient::complete(std::uint64_t request_id, ClientCompletion completion) {
  std::vector<ClientCompletion> one;
  one.push_back(std::move(completion));
  (void)request_id;
  complete_many(std::move(one));
}

void PlanClient::complete_many(std::vector<ClientCompletion> completions) {
  if (completions.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (ClientCompletion& completion : completions) {
      const std::uint64_t request_id = completion.request_id;
      for (const auto& connection : connections_) connection->outstanding.erase(request_id);
      // Idempotent: a write-failure completion may race the reader's
      // dropped-connection sweep for the same id.
      if (done_.count(request_id) == 0 && stats_done_.count(request_id) == 0)
        done_.emplace(request_id, std::move(completion));
    }
  }
  done_cv_.notify_all();
}

void PlanClient::reader_loop(std::size_t index) {
  Connection& connection = *connections_[index];
  FrameDecoder decoder;
  for (;;) {
    const std::string chunk = connection.endpoint->read(65536);
    if (chunk.empty()) break;
    decoder.feed(chunk);
    // Decode the whole chunk before touching the client mutex: a batch of
    // coalesced responses lands as one chunk, so it costs one lock and one
    // wakeup instead of one per frame.
    std::vector<ClientCompletion> ready;
    while (auto frame = decoder.next()) {
      const std::uint64_t id = frame->request_id;
      ClientCompletion completion;
      completion.request_id = id;
      switch (frame->type) {
        case MsgType::kPlanResponse: {
          if (!decode_plan_response(frame->payload, &completion.response)) {
            decoder.note_bad_payload();
            completion.error = "malformed plan_response payload";
          }
          ready.push_back(std::move(completion));
          break;
        }
        case MsgType::kStatsResponse: {
          WireTierStats stats;
          if (decode_stats_response(frame->payload, &stats)) {
            {
              std::lock_guard<std::mutex> lock(mutex_);
              connection.outstanding.erase(id);
              stats_done_[id] = stats;
            }
            done_cv_.notify_all();
          } else {
            decoder.note_bad_payload();
            completion.error = "malformed stats_response payload";
            ready.push_back(std::move(completion));
          }
          break;
        }
        case MsgType::kErrorResponse: {
          std::string message;
          if (!decode_error_response(frame->payload, &message)) {
            decoder.note_bad_payload();
            message = "malformed error_response payload";
          }
          completion.error = message.empty() ? "server error" : message;
          ready.push_back(std::move(completion));
          break;
        }
        case MsgType::kPlanRequest:
        case MsgType::kStatsRequest:
          // Client-bound streams never carry these; a CRC-valid frame that
          // does is a payload-level protocol violation.
          decoder.note_bad_payload();
          break;
      }
    }
    complete_many(std::move(ready));
    std::lock_guard<std::mutex> lock(mutex_);
    fold_codec_delta(&codec_stats_, &connection.folded, decoder.stats());
  }
  decoder.finish();
  // Connection is down: fail exactly the requests still outstanding on it.
  std::vector<std::uint64_t> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fold_codec_delta(&codec_stats_, &connection.folded, decoder.stats());
    orphans.assign(connection.outstanding.begin(), connection.outstanding.end());
  }
  for (const std::uint64_t id : orphans) {
    ClientCompletion dropped;
    dropped.request_id = id;
    dropped.error = "connection dropped";
    complete(id, std::move(dropped));
  }
}

}  // namespace sompi::net
