#include "net/wire.h"

#include <array>
#include <bit>
#include <cstring>

namespace sompi::net {

const char* msg_type_label(MsgType type) {
  switch (type) {
    case MsgType::kPlanRequest: return "plan_request";
    case MsgType::kPlanResponse: return "plan_response";
    case MsgType::kStatsRequest: return "stats_request";
    case MsgType::kStatsResponse: return "stats_response";
    case MsgType::kErrorResponse: return "error_response";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected). Table built once at compile time.

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t load_u32_le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint16_t load_u16_le(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    static_cast<unsigned char>(p[1]) << 8);
}

std::uint64_t load_u64_le(const char* p) {
  return static_cast<std::uint64_t>(load_u32_le(p)) |
         static_cast<std::uint64_t>(load_u32_le(p + 4)) << 32;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes)
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// WireWriter / WireReader.

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  out_.append(v);
}

bool WireReader::take(std::size_t n) {
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(static_cast<unsigned char>(in_[pos_++]));
}

std::uint16_t WireReader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v = load_u16_le(in_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  const std::uint32_t v = load_u32_le(in_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  const std::uint64_t v = load_u64_le(in_.data() + pos_);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  std::string v(in_.substr(pos_, len));
  pos_ += len;
  return v;
}

// ---------------------------------------------------------------------------
// Frames.

std::string encode_frame_raw(std::uint16_t version, std::uint16_t type,
                             std::uint64_t request_id, std::string_view payload) {
  WireWriter w;
  w.u32(kWireMagic);
  w.u16(version);
  w.u16(type);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  const std::uint32_t crc = crc32(w.bytes());
  w.u32(crc);
  return w.take();
}

std::string encode_frame(MsgType type, std::uint64_t request_id, std::string_view payload) {
  return encode_frame_raw(kWireVersion, static_cast<std::uint16_t>(type), request_id, payload);
}

WireCodecStats& WireCodecStats::operator+=(const WireCodecStats& o) {
  frames_decoded += o.frames_decoded;
  bytes_consumed += o.bytes_consumed;
  bad_magic += o.bad_magic;
  short_frame += o.short_frame;
  overlong_frame += o.overlong_frame;
  crc_mismatch += o.crc_mismatch;
  unknown_version += o.unknown_version;
  unknown_type += o.unknown_type;
  bad_payload += o.bad_payload;
  return *this;
}

void FrameDecoder::drop(std::size_t n) {
  stats_.bytes_consumed += n;
  buffer_.erase(0, n);
}

void FrameDecoder::scan_to_magic(std::size_t from) {
  std::size_t skip = from;
  while (skip + 4 <= buffer_.size() && load_u32_le(buffer_.data() + skip) != kWireMagic)
    ++skip;
  // Without a full match the scan stops ≤ 3 bytes short of the end — those
  // bytes may be the start of a magic whose remainder has not arrived yet,
  // so they stay buffered (a transport may split anywhere, even mid-magic).
  drop(skip);
}

std::optional<WireFrame> FrameDecoder::next() {
  for (;;) {
    if (buffer_.size() >= 4 && load_u32_le(buffer_.data()) != kWireMagic) {
      // Lost framing. Charge ONE reject for the whole lost-sync run —
      // resyncing_ suppresses further framing counts until a valid frame
      // proves sync is restored — then hunt for the next magic.
      if (!resyncing_) {
        ++stats_.bad_magic;
        resyncing_ = true;
      }
      scan_to_magic(1);
    }
    if (buffer_.size() < kWireHeaderBytes) return std::nullopt;

    const std::uint32_t payload_len = load_u32_le(buffer_.data() + 16);
    if (payload_len > config_.max_payload_bytes) {
      // The length field is untrusted until the CRC is checked, and an
      // absurd length must never make us buffer unboundedly — reject now
      // and hunt for the next magic (past this frame's own).
      if (!resyncing_) {
        ++stats_.overlong_frame;
        resyncing_ = true;
      }
      scan_to_magic(1);
      continue;
    }
    const std::size_t total = kWireHeaderBytes + payload_len + kWireTrailerBytes;
    if (buffer_.size() < total) return std::nullopt;

    const std::string_view frame(buffer_.data(), total);
    const std::uint32_t want_crc = load_u32_le(frame.data() + total - 4);
    if (crc32(frame.substr(0, total - 4)) != want_crc) {
      // The declared length passed the cap check but is still untrusted;
      // resync by scanning from inside the frame rather than trusting it.
      if (!resyncing_) {
        ++stats_.crc_mismatch;
        resyncing_ = true;
      }
      scan_to_magic(1);
      continue;
    }

    // CRC-valid: the header fields are authentic, and framing is restored
    // even if this particular frame is from a version or type we reject.
    resyncing_ = false;
    const std::uint16_t version = load_u16_le(frame.data() + 4);
    const std::uint16_t type = load_u16_le(frame.data() + 6);
    if (version != kWireVersion) {
      ++stats_.unknown_version;
      drop(total);
      continue;
    }
    if (type < 1 || type > 5) {
      ++stats_.unknown_type;
      drop(total);
      continue;
    }

    WireFrame out;
    out.type = static_cast<MsgType>(type);
    out.request_id = load_u64_le(frame.data() + 8);
    out.payload.assign(frame.substr(kWireHeaderBytes, payload_len));
    drop(total);
    ++stats_.frames_decoded;
    return out;
  }
}

void FrameDecoder::finish() {
  if (buffer_.empty()) return;
  // The stream ended mid-frame: a torn write, a drop, or tail garbage. If
  // we were already resyncing the corruption was charged when sync was
  // lost; otherwise this torn frame is its own (single) reject.
  if (!resyncing_) ++stats_.short_frame;
  drop(buffer_.size());
}

// ---------------------------------------------------------------------------
// Message payloads.

std::string encode_plan_request(const PlanRequest& request) {
  WireWriter w;
  w.str(request.app.name);
  w.u8(static_cast<std::uint8_t>(request.app.category));
  w.i32(request.app.processes);
  w.f64(request.app.instr_gi);
  w.f64(request.app.comm_gb);
  w.f64(request.app.msgs_per_rank);
  w.f64(request.app.io_seq_gb);
  w.f64(request.app.io_rand_gb);
  w.f64(request.app.state_gb);
  w.f64(request.deadline_h);
  w.u32(static_cast<std::uint32_t>(request.allowed_types.size()));
  for (const std::string& name : request.allowed_types) w.str(name);
  w.u32(static_cast<std::uint32_t>(request.allowed_zones.size()));
  for (const std::string& name : request.allowed_zones) w.str(name);
  return w.take();
}

bool decode_plan_request(std::string_view payload, PlanRequest* out) {
  WireReader r(payload);
  PlanRequest req;
  req.app.name = r.str();
  const std::uint8_t category = r.u8();
  if (category > static_cast<std::uint8_t>(AppCategory::kIo)) return false;
  req.app.category = static_cast<AppCategory>(category);
  req.app.processes = r.i32();
  req.app.instr_gi = r.f64();
  req.app.comm_gb = r.f64();
  req.app.msgs_per_rank = r.f64();
  req.app.io_seq_gb = r.f64();
  req.app.io_rand_gb = r.f64();
  req.app.state_gb = r.f64();
  req.deadline_h = r.f64();
  const std::uint32_t n_types = r.u32();
  // Count fields are CRC-authentic but still bounded by the payload itself:
  // each entry needs >= 4 bytes, so an absurd count fails the reads below
  // (never an allocation) — reserve only what could possibly fit.
  if (n_types > payload.size()) return false;
  for (std::uint32_t i = 0; i < n_types && r.ok(); ++i)
    req.allowed_types.push_back(r.str());
  const std::uint32_t n_zones = r.u32();
  if (n_zones > payload.size()) return false;
  for (std::uint32_t i = 0; i < n_zones && r.ok(); ++i)
    req.allowed_zones.push_back(r.str());
  if (!r.done()) return false;
  *out = std::move(req);
  return true;
}

std::string encode_plan_response(const PlanResponse& response) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(response.outcome));
  w.u64(response.epoch);
  w.u8(response.plan != nullptr ? 1 : 0);
  if (response.plan == nullptr) return w.take();
  const Plan& p = *response.plan;
  w.str(p.app);
  w.f64(p.step_hours);
  w.f64(p.deadline_h);
  w.f64(p.state_gb);
  w.u64(p.od.type_index);
  w.f64(p.od.t_h);
  w.i32(p.od.instances);
  w.f64(p.od.rate_usd_h);
  w.u8(p.od.feasible ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(p.groups.size()));
  for (const GroupPlan& g : p.groups) {
    w.u64(g.spec.type_index);
    w.u64(g.spec.zone_index);
    w.str(g.name);
    w.i32(g.instances);
    w.i32(g.t_steps);
    w.f64(g.o_steps);
    w.f64(g.r_steps);
    w.f64(g.bid_usd);
    w.i32(g.f_steps);
    w.str(g.ckpt_policy);
  }
  w.f64(p.expected.cost_usd);
  w.f64(p.expected.time_h);
  w.f64(p.expected.spot_cost_usd);
  w.f64(p.expected.od_cost_usd);
  w.f64(p.expected.spot_time_h);
  w.f64(p.expected.od_time_h);
  w.f64(p.expected.p_complete_on_spot);
  w.f64(p.expected.e_min_ratio);
  w.u8(p.spot_feasible ? 1 : 0);
  w.u64(p.model_evaluations);
  return w.take();
}

bool decode_plan_response(std::string_view payload, PlanResponse* out) {
  WireReader r(payload);
  PlanResponse resp;
  const std::uint8_t outcome = r.u8();
  if (outcome > static_cast<std::uint8_t>(PlanOutcome::kShed)) return false;
  resp.outcome = static_cast<PlanOutcome>(outcome);
  resp.epoch = r.u64();
  const std::uint8_t has_plan = r.u8();
  if (has_plan > 1) return false;
  if (has_plan == 0) {
    if (!r.done()) return false;
    *out = std::move(resp);
    return true;
  }
  Plan p;
  p.app = r.str();
  p.step_hours = r.f64();
  p.deadline_h = r.f64();
  p.state_gb = r.f64();
  p.od.type_index = r.u64();
  p.od.t_h = r.f64();
  p.od.instances = r.i32();
  p.od.rate_usd_h = r.f64();
  const std::uint8_t od_feasible = r.u8();
  if (od_feasible > 1) return false;
  p.od.feasible = od_feasible == 1;
  const std::uint32_t n_groups = r.u32();
  if (n_groups > payload.size()) return false;
  for (std::uint32_t i = 0; i < n_groups && r.ok(); ++i) {
    GroupPlan g;
    g.spec.type_index = r.u64();
    g.spec.zone_index = r.u64();
    g.name = r.str();
    g.instances = r.i32();
    g.t_steps = r.i32();
    g.o_steps = r.f64();
    g.r_steps = r.f64();
    g.bid_usd = r.f64();
    g.f_steps = r.i32();
    g.ckpt_policy = r.str();
    p.groups.push_back(std::move(g));
  }
  p.expected.cost_usd = r.f64();
  p.expected.time_h = r.f64();
  p.expected.spot_cost_usd = r.f64();
  p.expected.od_cost_usd = r.f64();
  p.expected.spot_time_h = r.f64();
  p.expected.od_time_h = r.f64();
  p.expected.p_complete_on_spot = r.f64();
  p.expected.e_min_ratio = r.f64();
  const std::uint8_t spot_feasible = r.u8();
  if (spot_feasible > 1) return false;
  p.spot_feasible = spot_feasible == 1;
  p.model_evaluations = static_cast<std::size_t>(r.u64());
  if (!r.done()) return false;
  resp.plan = std::make_shared<const Plan>(std::move(p));
  *out = std::move(resp);
  return true;
}

std::string encode_stats_request() { return {}; }

bool decode_stats_request(std::string_view payload) { return payload.empty(); }

std::string encode_stats_response(const WireTierStats& stats) {
  WireWriter w;
  w.u64(stats.epoch);
  w.u64(stats.requests);
  w.u64(stats.hits);
  w.u64(stats.solves);
  w.u64(stats.dedup_joins);
  w.u64(stats.sheds);
  w.u64(stats.routed);
  w.u64(stats.sprayed);
  w.u64(stats.forwarded);
  w.u64(stats.duplicate_solves);
  w.u64(stats.replan_count);
  w.u64(stats.connections);
  w.u64(stats.frames_received);
  w.u64(stats.responses_sent);
  w.u64(stats.wire_sheds);
  w.u64(stats.wire_errors);
  w.u64(stats.frames_rejected);
  return w.take();
}

bool decode_stats_response(std::string_view payload, WireTierStats* out) {
  WireReader r(payload);
  WireTierStats s;
  s.epoch = r.u64();
  s.requests = r.u64();
  s.hits = r.u64();
  s.solves = r.u64();
  s.dedup_joins = r.u64();
  s.sheds = r.u64();
  s.routed = r.u64();
  s.sprayed = r.u64();
  s.forwarded = r.u64();
  s.duplicate_solves = r.u64();
  s.replan_count = r.u64();
  s.connections = r.u64();
  s.frames_received = r.u64();
  s.responses_sent = r.u64();
  s.wire_sheds = r.u64();
  s.wire_errors = r.u64();
  s.frames_rejected = r.u64();
  if (!r.done()) return false;
  *out = s;
  return true;
}

std::string encode_error_response(std::string_view message) {
  WireWriter w;
  w.str(message);
  return w.take();
}

bool decode_error_response(std::string_view payload, std::string* message_out) {
  WireReader r(payload);
  std::string message = r.str();
  if (!r.done()) return false;
  *message_out = std::move(message);
  return true;
}

}  // namespace sompi::net
