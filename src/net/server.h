// PlanServerLoop — the wire-serving front end of the sharded plan tier
// (DESIGN.md §15).
//
//   client ── DuplexPipe ──► per-connection reader ──► AsyncBatchService
//                                   │ (decode, budget)        │ workers
//                                   │                         ▼
//   client ◄── writer mutex ◄── completion pump ◄──── BatchCompletion
//
// One reader thread per connection feeds a FrameDecoder and classifies every
// frame; a single completion pump harvests the batch service and writes each
// response to the connection its request arrived on, correlated by the
// request id the client chose (responses can complete out of submission
// order — the id is the contract, not ordering). A bounded in-flight budget
// turns overload into explicit kShed responses at the wire door, before the
// batch queue, mirroring the tier's own admission control.
//
// The connection a request arrives on IS its landing shard: requests are
// submitted with serve_on(connection.landing), so the tier's routed /
// sprayed / forwarded ledger measures the CLIENT's routing quality — a
// router-aware client lands every key on its ring home and the forwarding
// counter stays 0; a spray client pays one forward per misrouted request.
//
// Shutdown obeys the drain-on-shutdown completeness law, tested as such:
// every request accepted into the batch before shutdown() gets exactly one
// response frame written before its connection closes. (Reads are shut first,
// the batch drains, the pump flushes, and only then do connections close.)
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/pipe.h"
#include "net/wire.h"
#include "service/sharded/batch.h"
#include "service/sharded/sharded_service.h"

namespace sompi::net {

struct ServerConfig {
  /// Worker threads in the underlying AsyncBatchService.
  std::size_t workers = 4;
  /// Batch submission-queue bound (submit blocks when full, but the wire
  /// budget below sheds before that can matter in practice).
  std::size_t queue_capacity = 1024;
  /// Plan requests admitted but not yet answered, across all connections;
  /// the next one past this is shed with an explicit kShed response.
  std::size_t max_in_flight = 256;
  /// Per-direction pipe buffer.
  std::size_t pipe_capacity_bytes = 1 << 16;
  /// Frames above this payload size are rejected as overlong.
  std::size_t max_payload_bytes = 1 << 20;
  /// Optional chaos injected into every accepted connection's pipe.
  fi::FaultInjector* faults = nullptr;
};

class PlanServerLoop {
 public:
  /// `tier` is borrowed and must outlive the loop.
  PlanServerLoop(ShardedPlanService* tier, ServerConfig config);
  /// Calls shutdown() (drains, then closes).
  ~PlanServerLoop();

  PlanServerLoop(const PlanServerLoop&) = delete;
  PlanServerLoop& operator=(const PlanServerLoop&) = delete;

  /// Accepts a new connection whose requests land on `landing_shard` (the
  /// shard whose listener the client dialed) and returns the CLIENT side of
  /// its pipe. The endpoint stays valid until the loop is destroyed.
  PipeEndpoint* connect(std::size_t landing_shard);

  /// Graceful drain: stop reading, answer everything already admitted, then
  /// close every connection. Idempotent.
  void shutdown();

  /// Aggregate tier + wire counters (the payload of a StatsResponse).
  WireTierStats stats() const;

  ShardedPlanService* tier() { return tier_; }

 private:
  struct Connection {
    std::size_t landing_shard = 0;
    std::unique_ptr<DuplexPipe> pipe;
    PipeEndpoint* server_end = nullptr;  ///< owned by pipe
    std::mutex write_mutex;              ///< pump and reader both write
    std::thread reader;
    /// Decoder counters already folded into the loop aggregate (the reader
    /// folds deltas after every chunk, so stats() is live and race-free).
    WireCodecStats folded;
  };

  void reader_loop(Connection* connection);
  void pump_loop();
  void on_frame(Connection* connection, FrameDecoder* decoder, const WireFrame& frame);
  /// Bulk-admits the plan requests gathered from one read chunk: one budget
  /// check + one batch enqueue (one worker wakeup) for the whole burst;
  /// whatever exceeds the in-flight budget is shed explicitly. Clears
  /// `arrivals`.
  void admit_plan_requests(Connection* connection,
                           std::vector<std::pair<std::uint64_t, PlanRequest>>* arrivals);
  /// Serializes + frames a response and writes it on `connection`.
  void write_response(Connection* connection, std::uint64_t request_id,
                      const PlanResponse& response);
  void write_error(Connection* connection, std::uint64_t request_id,
                   std::string_view message);
  /// Drains every available completion to its connection. Returns the count.
  std::size_t dispatch_ready(std::chrono::milliseconds wait);

  ShardedPlanService* tier_;
  ServerConfig config_;
  std::unique_ptr<AsyncBatchService> batch_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  /// ticket → (connection, client request id) for in-flight plan requests.
  std::unordered_map<std::uint64_t, std::pair<Connection*, std::uint64_t>> in_flight_;
  bool accepting_ = true;
  bool draining_ = false;

  // Wire counters (tier counters live in the tier).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> wire_sheds_{0};
  std::atomic<std::uint64_t> wire_errors_{0};
  /// Codec counters aggregated across all connections (guarded by mutex_;
  /// readers fold their decoder's deltas in after every chunk).
  WireCodecStats codec_stats_;

  std::atomic<bool> pump_stop_{false};
  std::thread pump_;
};

}  // namespace sompi::net
