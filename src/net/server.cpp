#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.h"

namespace sompi::net {

namespace {

/// Adds the monotonic growth of `now` over `folded` to `aggregate`, then
/// marks it folded. Lets stats() read live codec counters without racing the
/// reader thread that owns the decoder.
void fold_codec_delta(WireCodecStats* aggregate, WireCodecStats* folded,
                      const WireCodecStats& now) {
  WireCodecStats delta = now;
  delta.frames_decoded -= folded->frames_decoded;
  delta.bytes_consumed -= folded->bytes_consumed;
  delta.bad_magic -= folded->bad_magic;
  delta.short_frame -= folded->short_frame;
  delta.overlong_frame -= folded->overlong_frame;
  delta.crc_mismatch -= folded->crc_mismatch;
  delta.unknown_version -= folded->unknown_version;
  delta.unknown_type -= folded->unknown_type;
  delta.bad_payload -= folded->bad_payload;
  *aggregate += delta;
  *folded = now;
}

}  // namespace

PlanServerLoop::PlanServerLoop(ShardedPlanService* tier, ServerConfig config)
    : tier_(tier), config_(config) {
  SOMPI_REQUIRE(tier_ != nullptr);
  SOMPI_REQUIRE(config_.max_in_flight >= 1);
  BatchConfig batch;
  batch.workers = config_.workers;
  // With queue_capacity >= max_in_flight the submission queue can never be
  // full while the wire budget admits (queued <= in-flight <= budget), so
  // submit_on never blocks under the loop mutex.
  batch.queue_capacity = std::max(config_.queue_capacity, config_.max_in_flight);
  batch_ = std::make_unique<AsyncBatchService>(tier_, batch);
  pump_ = std::thread([this] { pump_loop(); });
}

PlanServerLoop::~PlanServerLoop() { shutdown(); }

PipeEndpoint* PlanServerLoop::connect(std::size_t landing_shard) {
  SOMPI_REQUIRE(landing_shard < tier_->shard_count());
  std::lock_guard<std::mutex> lock(mutex_);
  SOMPI_REQUIRE_MSG(accepting_, "connect() after shutdown()");
  auto connection = std::make_unique<Connection>();
  connection->landing_shard = landing_shard;
  DuplexPipe::Config pipe_config;
  pipe_config.capacity_bytes = config_.pipe_capacity_bytes;
  pipe_config.faults = config_.faults;
  pipe_config.label =
      "conn" + std::to_string(connections_accepted_.load()) + "s" + std::to_string(landing_shard);
  connection->pipe = std::make_unique<DuplexPipe>(pipe_config);
  connection->server_end = &connection->pipe->b();
  PipeEndpoint* client_end = &connection->pipe->a();
  Connection* raw = connection.get();
  connections_.push_back(std::move(connection));
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  raw->reader = std::thread([this, raw] { reader_loop(raw); });
  return client_end;
}

void PlanServerLoop::reader_loop(Connection* connection) {
  FrameDecoder decoder(FrameDecoder::Config{config_.max_payload_bytes});
  std::vector<std::pair<std::uint64_t, PlanRequest>> arrivals;
  std::string hit_bytes;      // inline-answered warm hits, one write per chunk
  std::uint64_t hit_frames = 0;
  const auto flush_hits = [&] {
    if (hit_bytes.empty()) return;
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    // Counter before bytes (everywhere a response goes out): a client that
    // has observed a response must find it already counted in stats(); a
    // failed write (chaos drop, closed pipe) nets the count back to zero.
    responses_sent_.fetch_add(hit_frames, std::memory_order_relaxed);
    if (!connection->server_end->write(hit_bytes))
      responses_sent_.fetch_sub(hit_frames, std::memory_order_relaxed);
    hit_bytes.clear();
    hit_frames = 0;
  };
  for (;;) {
    const std::string chunk = connection->server_end->read(65536);
    if (chunk.empty()) break;  // closed (peer, chaos, or shutdown) and drained
    decoder.feed(chunk);
    arrivals.clear();
    while (auto frame = decoder.next()) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (frame->type == MsgType::kPlanRequest) {
        PlanRequest request;
        if (!decode_plan_request(frame->payload, &request)) {
          decoder.note_bad_payload();
          write_error(connection, frame->request_id, "malformed plan_request payload");
          continue;
        }
        // Warm-hit fast path: an epoch-current cached plan is answered
        // right here in the reader — no in-flight budget, no worker or
        // pump handoff. Everything else takes the batch path below.
        if (std::optional<PlanResponse> hit =
                tier_->try_serve_hit(connection->landing_shard, request)) {
          hit_bytes +=
              encode_frame(MsgType::kPlanResponse, frame->request_id,
                           encode_plan_response(*hit));
          ++hit_frames;
          continue;
        }
        arrivals.emplace_back(frame->request_id, std::move(request));
        continue;
      }
      // Per-connection order is preserved: a non-plan frame flushes the
      // batch gathered so far before it is answered.
      flush_hits();
      admit_plan_requests(connection, &arrivals);
      on_frame(connection, &decoder, *frame);
    }
    flush_hits();
    admit_plan_requests(connection, &arrivals);
    std::lock_guard<std::mutex> lock(mutex_);
    fold_codec_delta(&codec_stats_, &connection->folded, decoder.stats());
  }
  decoder.finish();
  std::lock_guard<std::mutex> lock(mutex_);
  fold_codec_delta(&codec_stats_, &connection->folded, decoder.stats());
}

void PlanServerLoop::admit_plan_requests(
    Connection* connection, std::vector<std::pair<std::uint64_t, PlanRequest>>* arrivals) {
  if (arrivals->empty()) return;
  std::size_t admitted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!draining_) {
      const std::size_t used = std::min(config_.max_in_flight, in_flight_.size());
      admitted = std::min(arrivals->size(), config_.max_in_flight - used);
    }
    if (admitted > 0) {
      std::vector<PlanRequest> requests;
      requests.reserve(admitted);
      for (std::size_t i = 0; i < admitted; ++i)
        requests.push_back(std::move((*arrivals)[i].second));
      // One queue-lock acquisition and one worker wakeup for the burst;
      // queue_capacity >= max_in_flight keeps this non-blocking under the
      // loop mutex (see the constructor).
      const std::vector<std::uint64_t> tickets =
          batch_->submit_many_on(connection->landing_shard, requests);
      for (std::size_t i = 0; i < admitted; ++i)
        in_flight_.emplace(tickets[i], std::make_pair(connection, (*arrivals)[i].first));
    }
  }
  // Whatever exceeded the budget (or arrived while draining) is shed
  // explicitly at the wire door.
  for (std::size_t i = admitted; i < arrivals->size(); ++i) {
    wire_sheds_.fetch_add(1, std::memory_order_relaxed);
    PlanResponse shed;
    shed.outcome = PlanOutcome::kShed;
    shed.epoch = tier_->fanout().epoch();
    write_response(connection, (*arrivals)[i].first, shed);
  }
  arrivals->clear();
}

void PlanServerLoop::on_frame(Connection* connection, FrameDecoder* decoder,
                              const WireFrame& frame) {
  switch (frame.type) {
    case MsgType::kPlanRequest:
      return;  // handled by reader_loop / admit_plan_requests
    case MsgType::kStatsRequest: {
      if (!decode_stats_request(frame.payload)) {
        decoder->note_bad_payload();
        write_error(connection, frame.request_id, "malformed stats_request payload");
        return;
      }
      const std::string payload = encode_stats_response(stats());
      const std::string bytes =
          encode_frame(MsgType::kStatsResponse, frame.request_id, payload);
      std::lock_guard<std::mutex> lock(connection->write_mutex);
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!connection->server_end->write(bytes))
        responses_sent_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    case MsgType::kPlanResponse:
    case MsgType::kStatsResponse:
    case MsgType::kErrorResponse:
      // Known frame types that only ever flow server→client.
      write_error(connection, frame.request_id, "unexpected message type at server");
      return;
  }
}

void PlanServerLoop::write_response(Connection* connection, std::uint64_t request_id,
                                    const PlanResponse& response) {
  const std::string bytes =
      encode_frame(MsgType::kPlanResponse, request_id, encode_plan_response(response));
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
  if (!connection->server_end->write(bytes))
    responses_sent_.fetch_sub(1, std::memory_order_relaxed);
}

void PlanServerLoop::write_error(Connection* connection, std::uint64_t request_id,
                                 std::string_view message) {
  wire_errors_.fetch_add(1, std::memory_order_relaxed);
  const std::string bytes =
      encode_frame(MsgType::kErrorResponse, request_id, encode_error_response(message));
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
  if (!connection->server_end->write(bytes))
    responses_sent_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t PlanServerLoop::dispatch_ready(std::chrono::milliseconds wait) {
  std::vector<BatchCompletion> batch = batch_->harvest_wait(wait);
  // Straggler gather: on a loaded (or single-core) host the workers and the
  // pump would otherwise ping-pong one completion at a time. A few bounded
  // yields let the rest of the burst finish so it ships in the same sweep;
  // the bound keeps a slow solve from delaying responses already done.
  if (!batch.empty()) {
    for (int spin = 0, stale = 0; spin < 16 && stale < 2; ++spin) {
      std::this_thread::yield();
      std::vector<BatchCompletion> more = batch_->harvest(0);
      if (more.empty()) {
        ++stale;
        continue;
      }
      stale = 0;
      std::move(more.begin(), more.end(), std::back_inserter(batch));
    }
  }
  // Coalesce: one correlation-lock acquisition and one pipe write (one
  // reader wakeup) per connection per sweep, not per response — the
  // difference between the wire and the in-process batch path is thread
  // handoffs, so the pump amortizes them.
  std::vector<std::pair<Connection*, std::uint64_t>> routes(batch.size(), {nullptr, 0});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto it = in_flight_.find(batch[i].ticket);
      if (it == in_flight_.end()) continue;  // unreachable by construction
      routes[i] = it->second;
      in_flight_.erase(it);
    }
  }
  struct Outbox {
    std::string bytes;
    std::uint64_t frames = 0;
  };
  std::unordered_map<Connection*, Outbox> outboxes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchCompletion& completion = batch[i];
    Connection* connection = routes[i].first;
    const std::uint64_t request_id = routes[i].second;
    if (connection == nullptr) continue;
    Outbox& box = outboxes[connection];
    if (!completion.error.empty()) {
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      box.bytes += encode_frame(MsgType::kErrorResponse, request_id,
                                encode_error_response(completion.error));
    } else {
      box.bytes += encode_frame(MsgType::kPlanResponse, request_id,
                                encode_plan_response(completion.response));
    }
    ++box.frames;
  }
  for (auto& [connection, box] : outboxes) {
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    responses_sent_.fetch_add(box.frames, std::memory_order_relaxed);
    if (!connection->server_end->write(box.bytes))
      responses_sent_.fetch_sub(box.frames, std::memory_order_relaxed);
  }
  return batch.size();
}

void PlanServerLoop::pump_loop() {
  for (;;) {
    dispatch_ready(std::chrono::milliseconds(50));
    if (pump_stop_.load(std::memory_order_acquire)) {
      // The batch is drained by now (shutdown orders it so); one final
      // non-blocking sweep flushes anything completed since the last pass.
      dispatch_ready(std::chrono::milliseconds(0));
      return;
    }
  }
}

void PlanServerLoop::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_ && draining_) return;  // second call: already shut down
    accepting_ = false;
    draining_ = true;
  }
  // 1. Stop intake: readers drain their buffered requests, then exit.
  std::vector<Connection*> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_) connections.push_back(connection.get());
  }
  for (Connection* connection : connections) connection->server_end->shutdown_read();
  for (Connection* connection : connections)
    if (connection->reader.joinable()) connection->reader.join();
  // 2. Everything admitted finishes solving.
  batch_->drain();
  // 3. The pump flushes every completion, then stops — the completeness law:
  //    each admitted request has its response written before any close.
  pump_stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) pump_.join();
  // 4. Only now do connections close (clients still drain buffered frames).
  for (Connection* connection : connections) connection->server_end->close();
  batch_->stop();
}

WireTierStats PlanServerLoop::stats() const {
  const ShardedStats tier = tier_->stats();
  WireTierStats s;
  s.epoch = tier.total.epoch;
  s.requests = tier.total.requests;
  s.hits = tier.total.hits;
  s.solves = tier.total.solves;
  s.dedup_joins = tier.total.dedup_joins;
  s.sheds = tier.total.sheds;
  s.routed = tier.routed;
  s.sprayed = tier.sprayed;
  s.forwarded = tier.forwarded;
  s.duplicate_solves = tier.duplicate_solves;
  s.replan_count = tier.total.replan_count;
  s.connections = connections_accepted_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.wire_sheds = wire_sheds_.load(std::memory_order_relaxed);
  s.wire_errors = wire_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.frames_rejected = codec_stats_.rejects();
  }
  return s;
}

}  // namespace sompi::net
