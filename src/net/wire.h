// Wire protocol for the plan-serving tier (DESIGN.md §15).
//
// Versioned, length-prefixed binary framing with a CRC32 trailer:
//
//   offset  size  field
//        0     4  magic      0x45524957 ("WIRE" as little-endian bytes)
//        4     2  version    kWireVersion (little-endian, like every field)
//        6     2  type       MsgType
//        8     8  request_id caller-chosen correlation id (echoed verbatim)
//       16     4  payload_len
//       20     n  payload    message body (per-type encoding below)
//     20+n     4  crc32      IEEE CRC-32 over bytes [0, 20+n)
//
// Everything is canonical little-endian; doubles travel as their IEEE bit
// patterns (never a decimal round trip), so a decoded PlanRequest
// re-canonicalizes to the IDENTICAL cache key and a decoded Plan reproduces
// plan_fingerprint() byte for byte — the property the wire tier's
// equivalence contract (bench_wire, the `wire` fuzz kind) is stated in.
//
// Decoding is lenient in the tradition of common/csv and the platform
// parser: a malformed frame is rejected with exactly one per-corruption-
// class counter bump (WireCodecStats) and the stream keeps going — a bad
// frame fails the REQUEST, never the connection, and no input can reach
// undefined behaviour (every read is bounds-checked, every length capped).
//
//   bad_magic       framing lost; bytes are skipped until the next magic
//   short_frame     the stream ended inside a frame (torn write / drop)
//   overlong_frame  declared payload_len exceeds the configured cap
//   crc_mismatch    the full frame arrived but its CRC fails
//   unknown_version CRC-valid frame from a protocol version we don't speak
//   unknown_type    CRC-valid frame whose type is not a MsgType
//   bad_payload     CRC-valid frame whose payload fails its message parse
//                   (counted by the caller of the decode_* helpers)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/plan_service.h"
#include "service/request.h"

namespace sompi::net {

inline constexpr std::uint32_t kWireMagic = 0x45524957u;  // "WIRE"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 20;
inline constexpr std::size_t kWireTrailerBytes = 4;

/// Message types. Values are wire contract — never renumber.
enum class MsgType : std::uint16_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kErrorResponse = 5,
};

const char* msg_type_label(MsgType type);

/// IEEE CRC-32 (polynomial 0xEDB88320, reflected), the zlib/Ethernet one.
std::uint32_t crc32(std::string_view bytes);

// ---------------------------------------------------------------------------
// Bounds-checked primitive encoding (canonical little-endian).

class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);  ///< IEEE bit pattern — exact, no decimal round trip
  /// u32 length prefix + raw bytes.
  void str(std::string_view v);
  void raw(std::string_view v) { out_.append(v); }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Never reads past the end: the first out-of-bounds access latches ok() to
/// false and every subsequent read returns a zero value. Callers check ok()
/// && done() once at the end instead of after every field.
class WireReader {
 public:
  explicit WireReader(std::string_view in) : in_(in) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  /// Length-prefixed string; an absurd length just latches ok() false.
  std::string str();

  bool ok() const { return ok_; }
  /// True when every byte was consumed (trailing junk is a parse failure).
  bool done() const { return ok_ && pos_ == in_.size(); }

 private:
  bool take(std::size_t n);

  std::string_view in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frames.

struct WireFrame {
  MsgType type = MsgType::kErrorResponse;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Encodes one complete frame (header + payload + CRC trailer).
std::string encode_frame(MsgType type, std::uint64_t request_id, std::string_view payload);

/// Test seam: arbitrary version/type values, so the unknown-version and
/// unknown-type reject paths can be exercised with frames whose CRC is valid.
std::string encode_frame_raw(std::uint16_t version, std::uint16_t type,
                             std::uint64_t request_id, std::string_view payload);

/// Per-corruption-class reject counters (see the header comment for the
/// classes). Monotonic; one reject increments exactly one class.
struct WireCodecStats {
  std::uint64_t frames_decoded = 0;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t bad_magic = 0;
  std::uint64_t short_frame = 0;
  std::uint64_t overlong_frame = 0;
  std::uint64_t crc_mismatch = 0;
  std::uint64_t unknown_version = 0;
  std::uint64_t unknown_type = 0;
  std::uint64_t bad_payload = 0;

  std::uint64_t rejects() const {
    return bad_magic + short_frame + overlong_frame + crc_mismatch + unknown_version +
           unknown_type + bad_payload;
  }

  WireCodecStats& operator+=(const WireCodecStats& o);
};

/// Incremental frame extractor: feed() arbitrary byte chunks (a transport
/// may deliver any split), next() yields complete valid frames, finish()
/// classifies a trailing partial frame as short_frame. Malformed input is
/// counted and skipped — decoding never throws on wire bytes and never
/// reads out of bounds.
class FrameDecoder {
 public:
  struct Config {
    /// Frames whose declared payload exceeds this are rejected (overlong)
    /// before any payload is buffered past the cap.
    std::size_t max_payload_bytes = 1 << 20;
  };

  FrameDecoder() : FrameDecoder(Config{}) {}
  explicit FrameDecoder(Config config) : config_(config) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// The next complete, CRC-valid, known-version/type frame, consuming (and
  /// counting) any rejected bytes before it. std::nullopt = need more input.
  std::optional<WireFrame> next();

  /// Call at end of stream: a pending partial frame counts as short_frame.
  void finish();

  const WireCodecStats& stats() const { return stats_; }
  /// The caller parsed a CRC-valid frame's payload and it was malformed.
  void note_bad_payload() { ++stats_.bad_payload; }

 private:
  /// Drops `n` buffered bytes and accounts them as consumed.
  void drop(std::size_t n);
  /// Skips forward to the next buffered magic at offset >= `from`, keeping
  /// up to 3 tail bytes that could be the start of a magic still in flight.
  /// By contract the caller already counted the reject (or is resyncing).
  void scan_to_magic(std::size_t from);

  Config config_;
  std::string buffer_;
  WireCodecStats stats_;
  /// True between losing framing and the next CRC-valid frame: one reject
  /// is charged per lost-sync RUN, not per garbage byte or spurious magic.
  bool resyncing_ = false;
};

// ---------------------------------------------------------------------------
// Message payloads. Encoders are total; decoders return false (never throw,
// never UB) on malformed payloads — the caller counts bad_payload and fails
// the request.

std::string encode_plan_request(const PlanRequest& request);
bool decode_plan_request(std::string_view payload, PlanRequest* out);

/// The response carries outcome, epoch and — for non-shed outcomes — the
/// full fingerprint surface of the Plan: every field plan_fingerprint()
/// reads travels bit-exactly, so fingerprinting the decoded plan yields the
/// byte-identical string an in-process caller would compute. Work accounting
/// (PlanStats) and wall clock (optimize_seconds) stay local to the server,
/// exactly as they are excluded from the fingerprint.
std::string encode_plan_response(const PlanResponse& response);
bool decode_plan_response(std::string_view payload, PlanResponse* out);

std::string encode_stats_request();
bool decode_stats_request(std::string_view payload);

/// Aggregate tier + wire counters served to `stats` clients — the shell-level
/// observability surface for the router-aware-client ~0-forwards gate.
struct WireTierStats {
  std::uint64_t epoch = 0;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t solves = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t sheds = 0;
  std::uint64_t routed = 0;
  std::uint64_t sprayed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t duplicate_solves = 0;
  std::uint64_t replan_count = 0;
  // Wire-level accounting (the serving front end's own counters).
  std::uint64_t connections = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t wire_sheds = 0;      ///< shed at the server's in-flight budget
  std::uint64_t wire_errors = 0;     ///< error responses sent
  std::uint64_t frames_rejected = 0; ///< codec rejects across all connections

  bool operator==(const WireTierStats&) const = default;
};

std::string encode_stats_response(const WireTierStats& stats);
bool decode_stats_response(std::string_view payload, WireTierStats* out);

std::string encode_error_response(std::string_view message);
bool decode_error_response(std::string_view payload, std::string* message_out);

}  // namespace sompi::net
