// In-process socket-pair transport (DESIGN.md §15).
//
// A DuplexPipe is two bounded byte channels glued back to back: what one
// endpoint writes the other reads, in order, in arbitrary chunk splits —
// exactly the stream (not datagram) semantics of a TCP socket, minus the
// kernel. Being in-process keeps the whole serving stack deterministic and
// lets chaos come from the same seed-derived FaultInjector as every other
// subsystem:
//
//   wire.torn_write   the write delivers only a deterministic prefix
//                     (FaultInjector::torn_length) and the connection drops
//   wire.drop         the connection drops instead of writing
//   wire.short_read   a read is capped to a few bytes — maximal chunk
//                     fragmentation, no data loss (exercises every resume
//                     point in FrameDecoder::feed)
//
// Closing is one-way-visible like a socket: after close() (or a chaos drop)
// writes fail and reads drain whatever was already buffered, then return 0.
// Every blocking call is condition-variable based — no spinning — so the
// 8-client stress tests run clean under TSan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "faultinject/injector.h"

namespace sompi::net {

/// One direction of a pipe: a bounded, blocking, chunk-preserving byte queue.
class ByteChannel {
 public:
  explicit ByteChannel(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Appends all of `bytes`, blocking while the channel is over capacity.
  /// Returns false (writing nothing) once the channel is closed.
  bool write(std::string_view bytes);

  /// Takes up to `max_bytes` from the front, blocking while the channel is
  /// empty and open. Returns an empty string only at closed-and-drained.
  std::string read(std::size_t max_bytes);

  /// Idempotent; wakes every blocked reader and writer.
  void close();
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<char> buffer_;
  bool closed_ = false;
};

class PipeEndpoint;

/// The socket pair. Create one, hand endpoint `a()` to the client side and
/// `b()` to the server side; both stay valid for the pipe's lifetime.
class DuplexPipe {
 public:
  struct Config {
    std::size_t capacity_bytes = 1 << 16;
    /// Optional chaos; borrowed, may be null. Decision streams are keyed by
    /// `label` + endpoint side so same-seed runs replay identically.
    fi::FaultInjector* faults = nullptr;
    std::string label = "pipe";
  };

  explicit DuplexPipe(Config config);

  PipeEndpoint& a() { return *a_; }
  PipeEndpoint& b() { return *b_; }

 private:
  std::unique_ptr<ByteChannel> a_to_b_;
  std::unique_ptr<ByteChannel> b_to_a_;
  std::unique_ptr<PipeEndpoint> a_;
  std::unique_ptr<PipeEndpoint> b_;
};

/// One side of a DuplexPipe. Not owned by callers; lives in the pipe.
class PipeEndpoint {
 public:
  PipeEndpoint(ByteChannel* out, ByteChannel* in, fi::FaultInjector* faults,
               std::string chaos_key)
      : out_(out), in_(in), faults_(faults), chaos_key_(std::move(chaos_key)) {}

  /// Writes the whole buffer (stream semantics: one write may arrive as many
  /// reads). Under chaos a torn write delivers a deterministic prefix and
  /// closes the connection; a drop closes it without writing. Returns false
  /// once the connection is down.
  bool write(std::string_view bytes);

  /// Reads up to `max_bytes` (at least 1 unless closed-and-drained, which
  /// returns ""). Short-read chaos caps the chunk size; it never loses data.
  std::string read(std::size_t max_bytes = 4096);

  /// Closes BOTH directions — like shutdown(SHUT_RDWR): peers' writes start
  /// failing and their reads drain then EOF.
  void close();
  /// Closes only the INCOMING direction — like shutdown(SHUT_RD): this
  /// side's reads drain then EOF and the peer's writes start failing, but
  /// this side can still write (the drain path during graceful shutdown).
  void shutdown_read() { in_->close(); }
  bool closed() const { return out_->closed() && in_->closed(); }

 private:
  ByteChannel* out_;
  ByteChannel* in_;
  fi::FaultInjector* faults_;
  std::string chaos_key_;
};

}  // namespace sompi::net
