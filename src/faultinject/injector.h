// The runtime half of fault injection: a FaultInjector answers "does fault X
// fire here?" for every hook site, deterministically.
//
// Determinism contract (extends DESIGN.md §6d to injected faults): the n-th
// decision on a given (channel, key) stream is a pure function of
// (plan.seed, channel, key, n). Hook sites are placed so that every stream's
// op sequence is itself deterministic — per-rank storage keys serialize each
// rank's own traffic, protocol points are reached in protocol order — which
// makes a whole fault schedule replay bit-identically from its seed at any
// thread count. Stateless channels (kSpotKill) take no counter at all, so
// replaying a simulation twice over the same injector gives identical bits.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "faultinject/fault_plan.h"

namespace sompi::fi {

/// Thrown at a firing hook point. Derives from IoError so existing recovery
/// paths (checkpoint restore guards, retry loops) treat an injected fault
/// exactly like a real storage/protocol failure.
class InjectedFault : public IoError {
 public:
  InjectedFault(Channel channel, const std::string& key, std::uint64_t op)
      : IoError(std::string("injected fault: ") + channel_label(channel) + " key=" + key +
                " op#" + std::to_string(op)),
        channel_(channel) {}

  Channel channel() const { return channel_; }

  /// True when an error string came from an InjectedFault (harnesses use
  /// this to separate injected chaos from genuine invariant violations).
  static bool describes(const std::string& what) {
    return what.find("injected fault: ") != std::string::npos;
  }

 private:
  Channel channel_;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// The n-th call for a given (channel, key) answers true with
  /// `probability`, decided by a pure hash of (seed, channel, key, n).
  /// Advances that stream's op counter either way. Thread-safe.
  bool roll(Channel channel, const std::string& key, double probability);

  /// roll() with the plan's probability for `channel`; counts an injection
  /// when it fires. When `op_out` is non-null it receives the op index
  /// consumed by this decision (callers use it to derive further
  /// deterministic values, e.g. a torn upload's truncation length). Never
  /// fires after quiesce(). Deliberately NOT limited by a global fired-fault
  /// counter: near exhaustion such a counter hands the last budget slot to
  /// whichever thread rolls first, making the fired set depend on scheduling
  /// and breaking bit-identical replay.
  bool fires(Channel channel, const std::string& key, std::uint64_t* op_out = nullptr);

  /// Deterministic kill switch: after this call no probabilistic channel
  /// fires again (op streams keep advancing, so decisions that would have
  /// been made are consumed identically). Harnesses running a chaos retry
  /// loop call this once the plan's attempt budget (max_faults) is spent —
  /// the next attempt is then guaranteed clean, which bounds the loop.
  /// kSpotKill is exempt: it models the market, not a fault burst.
  void quiesce() { quiesced_.store(true, std::memory_order_relaxed); }
  bool quiesced() const { return quiesced_.load(std::memory_order_relaxed); }

  /// Throws InjectedFault when fires() — the checkpoint-protocol hook shape.
  void protocol_point(Channel channel, const std::string& key);

  /// Stateless decision: force-kill `group` at trace step `step`? Pure in
  /// (seed, group, step); safe to re-ask (replay determinism), const.
  bool spot_kill(const std::string& group, std::size_t step) const;

  /// True when the plan schedules a market-epoch bump before solve #index.
  bool epoch_bump_at(std::uint64_t solve_index) const {
    return plan_.scheduled_bump(solve_index);
  }

  /// Deterministic truncation length for a torn upload of `size` bytes:
  /// strictly shorter than `size` (for size >= 1), pure in (seed, key, op).
  std::size_t torn_length(const std::string& key, std::uint64_t op, std::size_t size) const;

  /// Faults injected so far (all probabilistic channels).
  std::uint64_t injected_count() const { return injected_.load(std::memory_order_relaxed); }

  /// Snapshot of every decision stream's op count, keyed "<channel>|<key>".
  /// Determinism harnesses compare these across same-seed replays.
  std::unordered_map<std::string, std::uint64_t> op_counts() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return op_counts_;
  }

  /// Simulated latency accumulated by latency spikes (never sleeps).
  double simulated_latency_ms() const;
  void add_latency(double ms);

 private:
  std::uint64_t next_op(Channel channel, const std::string& key);
  double channel_probability(Channel channel) const;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint64_t> op_counts_;
  double latency_ms_ = 0.0;
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<bool> quiesced_{false};
};

}  // namespace sompi::fi
