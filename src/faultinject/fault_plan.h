// Seed-derived fault schedules.
//
// The paper's value proposition is correct behaviour under failure: circle
// groups die at out-of-bid events, checkpoints must restore the most advanced
// committed state, and the on-demand fallback must still meet the deadline
// (Formulas 5–11). A FaultPlan is the chaos side of that contract: a small,
// fully seed-derived description of which injectable events fire — spot kills
// at arbitrary ticks, checkpoint write/read failures and truncated uploads,
// storage latency spikes and transient errors, market-epoch bumps mid-solve,
// and service shed pressure. Everything an injector ever decides is a pure
// function of (plan, channel, key, per-key op index), so a failing scenario
// replays bit-identically from its seed alone — at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sompi::fi {

/// One deterministic decision stream per (channel, key). Hook sites name the
/// channel they consult; the key scopes the stream (a storage key, a run id,
/// a canonical request key, a circle-group name).
enum class Channel : int {
  kStoragePut = 1,     ///< upload fails (nothing written)
  kStoragePutTorn,     ///< upload fails after writing a truncated prefix
  kStorageGet,         ///< download fails transiently
  kStorageExists,      ///< HEAD-style probe fails transiently
  kStorageLatency,     ///< operation hits a simulated latency spike
  kCkptPreBlob,        ///< crash before a rank uploads its blob
  kCkptPreCommit,      ///< crash after all blobs, before the commit marker
  kCkptPostCommit,     ///< crash right after the commit marker
  kCkptPreLoad,        ///< crash/IO error entering a restore
  kSpotKill,           ///< out-of-bid kill forced at a (group, step)
  kServiceShed,        ///< admission control forced to shed a request
  kFeedDrop,           ///< market tick lost before ingestion
  kFeedDup,            ///< market tick delivered twice
  kFeedLate,           ///< market tick delayed past its successor
  kCacheWipe,          ///< node-local checkpoint cache level lost (node died)
  kPartnerLoss,        ///< a peer's redundancy shard lost with its node
  kFlushKill,          ///< spot kill lands mid async cache→remote flush
  kWireTornWrite,      ///< a wire write delivers only a prefix, then drops
  kWireDrop,           ///< the connection drops before a wire write
  kWireShortRead,      ///< a wire read is capped to a small chunk (no loss)
};

const char* channel_label(Channel channel);

/// A complete injectable-event schedule. Probabilities are per decision on
/// their channel; scheduled events (kill ticks, epoch bumps) are explicit.
/// The all-zero default injects nothing.
struct FaultPlan {
  /// Root of every decision stream.
  std::uint64_t seed = 0;

  // --- storage (consulted by FaultyStore) ---------------------------------
  double p_put_error = 0.0;
  double p_put_torn = 0.0;   ///< torn uploads also throw; the prefix stays
  double p_get_error = 0.0;
  double p_exists_error = 0.0;
  double p_latency = 0.0;
  double latency_ms = 25.0;  ///< simulated cost of one latency spike

  // --- checkpoint protocol points (consulted by the checkpointers) --------
  double p_protocol_crash = 0.0;  ///< pre-blob / pre-commit / post-commit
  double p_load_error = 0.0;      ///< pre-load

  // --- simulation (consulted by ReplayEngine) -----------------------------
  /// Probability that a (group, step) is force-killed regardless of the
  /// trace price. Stateless: the same (group, step) always answers the same.
  double p_spot_kill = 0.0;

  // --- market feed (consulted by feed::ChaosTickSource) -------------------
  double p_tick_drop = 0.0;  ///< tick lost before the queue
  double p_tick_dup = 0.0;   ///< tick emitted twice
  double p_tick_late = 0.0;  ///< tick held back one slot (out-of-order)

  // --- multi-level checkpointing (consulted by the multilevel scenario) ---
  double p_cache_wipe = 0.0;    ///< node-local cache level wiped between saves
  double p_partner_loss = 0.0;  ///< one peer redundancy shard lost alongside
  double p_flush_kill = 0.0;    ///< async flush killed before the remote COMMIT

  // --- wire transport (consulted by net::DuplexPipe) ----------------------
  double p_wire_torn = 0.0;        ///< write truncated to a torn prefix, then EOF
  double p_wire_drop = 0.0;        ///< connection closed instead of writing
  double p_wire_short_read = 0.0;  ///< read capped to a tiny chunk (split, no loss)

  // --- serving layer (consulted by PlanService / the scenario driver) -----
  double p_shed = 0.0;  ///< forced admission-control shed per request
  /// Solve indices (0-based, in arrival order) before which the market
  /// board bumps its epoch — the mid-solve invalidation race.
  std::vector<std::uint32_t> epoch_bump_solves;

  // --- mini-MPI (consulted via Runtime::run_with_plan) --------------------
  /// Kill the world after this many Comm::tick() calls summed over all
  /// ranks; 0 leaves the failure controller disarmed.
  std::uint64_t kill_after_ticks = 0;

  /// Chaos-attempt budget: a harness retrying under injection calls
  /// FaultInjector::quiesce() once this many attempts have failed, which
  /// silences every probabilistic channel except kSpotKill (the market, not
  /// a fault burst) and guarantees the next attempt runs clean — that is
  /// what terminates a retry loop. Enforced at the attempt boundary rather
  /// than by a global fired-fault counter: a cross-thread counter hands its
  /// last slot to whichever thread rolls first, so the fired set would
  /// depend on scheduling and same-seed replays would diverge.
  std::uint32_t max_faults = UINT32_MAX;

  /// Representative random mixture for generic chaos runs: moderate storage
  /// and protocol fault rates, an occasional armed kill, a small budget.
  static FaultPlan from_seed(std::uint64_t seed);

  /// A plan that injects nothing (seed kept for derived decisions).
  static FaultPlan quiet(std::uint64_t seed);

  bool scheduled_bump(std::uint64_t solve_index) const;
};

}  // namespace sompi::fi
