// StorageBackend decorator that injects faults on the way to a real backend.
//
// Interposes between the checkpointers and any StorageBackend (MemoryStore,
// DiskStore, S3Sim) and consults a FaultInjector on every operation:
//   - put: latency spikes, outright failures (nothing written), and torn
//     uploads — a deterministic strict prefix is written, then the put
//     throws. Torn writes always throw: a silently truncated blob would be
//     undetectable under the commit-marker protocol (no checksums), so the
//     decorator models the realistic failure — the client sees an error and
//     retries — rather than an unphysical silent corruption.
//   - get/exists: transient InjectedFault errors, latency spikes.
//   - list/remove/bytes_stored: passthrough (the protocol never depends on
//     them mid-save).
#pragma once

#include "checkpoint/storage.h"
#include "faultinject/injector.h"

namespace sompi::fi {

class FaultyStore : public StorageBackend {
 public:
  /// Neither pointer is owned; both must outlive the decorator.
  FaultyStore(StorageBackend* inner, FaultInjector* faults)
      : inner_(inner), faults_(faults) {}

  void put(const std::string& key, std::span<const std::byte> data) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& key) override;
  std::uint64_t bytes_stored() const override;

 private:
  StorageBackend* inner_;
  FaultInjector* faults_;
};

}  // namespace sompi::fi
