#include "faultinject/faulty_store.h"

namespace sompi::fi {

void FaultyStore::put(const std::string& key, std::span<const std::byte> data) {
  if (faults_->fires(Channel::kStorageLatency, key))
    faults_->add_latency(faults_->plan().latency_ms);
  std::uint64_t op = 0;
  if (faults_->fires(Channel::kStoragePutTorn, key, &op)) {
    const std::size_t keep = faults_->torn_length(key, op, data.size());
    inner_->put(key, data.first(keep));
    throw InjectedFault(Channel::kStoragePutTorn, key, op);
  }
  if (faults_->fires(Channel::kStoragePut, key, &op))
    throw InjectedFault(Channel::kStoragePut, key, op);
  inner_->put(key, data);
}

std::optional<std::vector<std::byte>> FaultyStore::get(const std::string& key) const {
  if (faults_->fires(Channel::kStorageLatency, key))
    faults_->add_latency(faults_->plan().latency_ms);
  std::uint64_t op = 0;
  if (faults_->fires(Channel::kStorageGet, key, &op))
    throw InjectedFault(Channel::kStorageGet, key, op);
  return inner_->get(key);
}

bool FaultyStore::exists(const std::string& key) const {
  std::uint64_t op = 0;
  if (faults_->fires(Channel::kStorageExists, key, &op))
    throw InjectedFault(Channel::kStorageExists, key, op);
  return inner_->exists(key);
}

std::vector<std::string> FaultyStore::list(const std::string& prefix) const {
  return inner_->list(prefix);
}

void FaultyStore::remove(const std::string& key) { inner_->remove(key); }

std::uint64_t FaultyStore::bytes_stored() const { return inner_->bytes_stored(); }

}  // namespace sompi::fi
