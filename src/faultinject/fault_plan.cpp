#include "faultinject/fault_plan.h"

#include <algorithm>

#include "common/rng.h"

namespace sompi::fi {

const char* channel_label(Channel channel) {
  switch (channel) {
    case Channel::kStoragePut: return "storage.put";
    case Channel::kStoragePutTorn: return "storage.put_torn";
    case Channel::kStorageGet: return "storage.get";
    case Channel::kStorageExists: return "storage.exists";
    case Channel::kStorageLatency: return "storage.latency";
    case Channel::kCkptPreBlob: return "ckpt.pre_blob";
    case Channel::kCkptPreCommit: return "ckpt.pre_commit";
    case Channel::kCkptPostCommit: return "ckpt.post_commit";
    case Channel::kCkptPreLoad: return "ckpt.pre_load";
    case Channel::kSpotKill: return "sim.spot_kill";
    case Channel::kServiceShed: return "service.shed";
    case Channel::kFeedDrop: return "feed.drop";
    case Channel::kFeedDup: return "feed.dup";
    case Channel::kFeedLate: return "feed.late";
    case Channel::kCacheWipe: return "ckpt.cache_wipe";
    case Channel::kPartnerLoss: return "ckpt.partner_loss";
    case Channel::kFlushKill: return "ckpt.flush_kill";
    case Channel::kWireTornWrite: return "wire.torn_write";
    case Channel::kWireDrop: return "wire.drop";
    case Channel::kWireShortRead: return "wire.short_read";
  }
  return "?";
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  Rng rng(seed ^ 0xFA17B1A5u);
  FaultPlan plan;
  plan.seed = seed;
  // A global intensity knob keeps some seeds nearly quiet and others hostile.
  const double intensity = rng.uniform();
  plan.p_put_error = intensity * rng.uniform(0.0, 0.15);
  plan.p_put_torn = intensity * rng.uniform(0.0, 0.10);
  plan.p_get_error = intensity * rng.uniform(0.0, 0.15);
  plan.p_exists_error = intensity * rng.uniform(0.0, 0.10);
  plan.p_latency = rng.uniform(0.0, 0.25);
  plan.latency_ms = rng.uniform(1.0, 250.0);
  plan.p_protocol_crash = intensity * rng.uniform(0.0, 0.10);
  plan.p_load_error = intensity * rng.uniform(0.0, 0.10);
  plan.p_spot_kill = rng.uniform(0.0, 0.25);
  plan.p_shed = intensity * rng.uniform(0.0, 0.20);
  if (rng.bernoulli(0.5)) plan.kill_after_ticks = rng.uniform_index(64) + 1;
  const std::size_t bumps = rng.uniform_index(4);
  for (std::size_t i = 0; i < bumps; ++i)
    plan.epoch_bump_solves.push_back(static_cast<std::uint32_t>(rng.uniform_index(16)));
  std::sort(plan.epoch_bump_solves.begin(), plan.epoch_bump_solves.end());
  plan.max_faults = static_cast<std::uint32_t>(rng.uniform_index(12));
  // Feed-chaos rates are drawn last so every earlier field keeps the exact
  // value it had before the feed channels existed (same-seed plans stay
  // comparable across versions).
  plan.p_tick_drop = intensity * rng.uniform(0.0, 0.15);
  plan.p_tick_dup = intensity * rng.uniform(0.0, 0.15);
  plan.p_tick_late = intensity * rng.uniform(0.0, 0.20);
  // Multi-level channels are drawn after the feed ones for the same reason:
  // earlier fields keep their exact same-seed values across versions.
  plan.p_cache_wipe = rng.uniform(0.0, 0.35);
  plan.p_partner_loss = intensity * rng.uniform(0.0, 0.25);
  plan.p_flush_kill = intensity * rng.uniform(0.0, 0.25);
  // Wire channels are drawn after the multi-level ones, again so that every
  // earlier field keeps its exact same-seed value across versions.
  plan.p_wire_torn = intensity * rng.uniform(0.0, 0.15);
  plan.p_wire_drop = intensity * rng.uniform(0.0, 0.10);
  plan.p_wire_short_read = rng.uniform(0.0, 0.35);
  return plan;
}

FaultPlan FaultPlan::quiet(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  return plan;
}

bool FaultPlan::scheduled_bump(std::uint64_t solve_index) const {
  return std::binary_search(epoch_bump_solves.begin(), epoch_bump_solves.end(),
                            static_cast<std::uint32_t>(
                                std::min<std::uint64_t>(solve_index, UINT32_MAX)));
}

}  // namespace sompi::fi
