#include "faultinject/injector.h"

#include "common/rng.h"

namespace sompi::fi {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Pure decision hash → uniform double in [0, 1).
double decision_uniform(std::uint64_t seed, Channel channel, std::uint64_t key_hash,
                        std::uint64_t op) {
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(channel) * 0x9E3779B97F4A7C15ULL);
  state ^= splitmix64(state) ^ key_hash;
  state ^= splitmix64(state) ^ op;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t FaultInjector::next_op(Channel channel, const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_counts_[std::to_string(static_cast<int>(channel)) + '|' + key]++;
}

double FaultInjector::channel_probability(Channel channel) const {
  switch (channel) {
    case Channel::kStoragePut: return plan_.p_put_error;
    case Channel::kStoragePutTorn: return plan_.p_put_torn;
    case Channel::kStorageGet: return plan_.p_get_error;
    case Channel::kStorageExists: return plan_.p_exists_error;
    case Channel::kStorageLatency: return plan_.p_latency;
    case Channel::kCkptPreBlob:
    case Channel::kCkptPreCommit:
    case Channel::kCkptPostCommit: return plan_.p_protocol_crash;
    case Channel::kCkptPreLoad: return plan_.p_load_error;
    case Channel::kSpotKill: return plan_.p_spot_kill;
    case Channel::kServiceShed: return plan_.p_shed;
    case Channel::kFeedDrop: return plan_.p_tick_drop;
    case Channel::kFeedDup: return plan_.p_tick_dup;
    case Channel::kFeedLate: return plan_.p_tick_late;
    case Channel::kCacheWipe: return plan_.p_cache_wipe;
    case Channel::kPartnerLoss: return plan_.p_partner_loss;
    case Channel::kFlushKill: return plan_.p_flush_kill;
    case Channel::kWireTornWrite: return plan_.p_wire_torn;
    case Channel::kWireDrop: return plan_.p_wire_drop;
    case Channel::kWireShortRead: return plan_.p_wire_short_read;
  }
  return 0.0;
}

bool FaultInjector::roll(Channel channel, const std::string& key, double probability) {
  const std::uint64_t op = next_op(channel, key);
  return decision_uniform(plan_.seed, channel, fnv1a(key), op) < probability;
}

bool FaultInjector::fires(Channel channel, const std::string& key, std::uint64_t* op_out) {
  // The stream advances before the quiesce check so that quiescing does not
  // shift later decisions on the same stream.
  const std::uint64_t op = next_op(channel, key);
  if (op_out != nullptr) *op_out = op;
  const bool would =
      decision_uniform(plan_.seed, channel, fnv1a(key), op) < channel_probability(channel);
  if (!would || quiesced()) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::protocol_point(Channel channel, const std::string& key) {
  const std::uint64_t op = next_op(channel, key);
  if (decision_uniform(plan_.seed, channel, fnv1a(key), op) >=
          channel_probability(channel) ||
      quiesced())
    return;
  injected_.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault(channel, key, op);
}

bool FaultInjector::spot_kill(const std::string& group, std::size_t step) const {
  return decision_uniform(plan_.seed, Channel::kSpotKill, fnv1a(group), step) <
         plan_.p_spot_kill;
}

std::size_t FaultInjector::torn_length(const std::string& key, std::uint64_t op,
                                       std::size_t size) const {
  if (size <= 1) return 0;
  std::uint64_t state = plan_.seed ^ fnv1a(key) ^ (op * 0x9E3779B97F4A7C15ULL);
  return static_cast<std::size_t>(splitmix64(state) % size);
}

double FaultInjector::simulated_latency_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latency_ms_;
}

void FaultInjector::add_latency(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_ms_ += ms;
}

}  // namespace sompi::fi
