// Seeded chaos scenarios: one seed → one fully deterministic run of a
// subsystem under an injected failure schedule, plus the invariants that
// must hold for ANY schedule.
//
// The eleven scenario kinds (selected by seed % 11) and their invariants:
//
//   checkpoint / incremental — an iterative mini-MPI app checkpoints under
//     storage faults, torn uploads, protocol crashes and a tick-kill.
//     Invariants: the run completes within the fault budget; a restore
//     never regresses below recorded committed progress and never exceeds
//     attempted progress; restored bytes bit-match the state saved at that
//     iteration; after completion the latest committed snapshot is the
//     final state of every rank.
//
//   replay — a synthetic plan replays a generated market with forced spot
//     kills. Invariants: the same (plan, injector) replays bit-identically;
//     a quiet injector replays identically to no injector; the on-demand
//     fallback always lands within the harness-computed worst-case deadline
//     bound  max_i max_t (t·h + Ratio_i(t)·T_od);  ratios and fractions
//     stay in [0, 1].
//
//   service — a PlanService serves a request sequence under injected shed
//     pressure and mid-sequence market-epoch bumps. Invariants: every
//     non-shed response is fingerprint-identical to a fresh reference solve
//     at its epoch (cache hits included, across bumps); sheds carry no
//     plan; the stats counters tally.
//
//   plan — the optimizer is a pure function: same inputs → bit-identical
//     plan fingerprints across repeated solves and thread counts.
//
//   feed — a market-feed pipeline replays a trace tail into a MarketBoard
//     under injected tick chaos (drops, duplicates, reordering).
//     Invariants: a synchronous single-source run and a multi-producer
//     queued run of the same post-chaos streams commit bit-identical price
//     matrices, epoch sequences and digests; without chaos the committed
//     market bit-matches the recorded trace; the tick/commit conservation
//     laws hold; a plan served at the final epoch is fingerprint-identical
//     to a fresh solve on the published market.
//
//   multilevel — the scenario-0 app runs over the multi-level checkpoint
//     hierarchy (node cache + peer redundancy + S3-sim remote) under cache
//     wipes, shard losses and killed flushes, at most one loss per version.
//     Invariants: the run completes within the fault budget and restores
//     never regress; the post-mortem restore returns the final iteration's
//     exact bytes with ZERO billed S3-sim GETs (single-rank losses rebuild
//     from peers); after a total cache loss only remote-committed versions
//     serve — exactly one GET per rank, killed flushes stay invisible; the
//     optimizer's multi-level policy set never costs more than single-level
//     and an empty policy list keeps the degenerate fingerprint
//     byte-identical.
//
//   platform — a seeded random heterogeneous platform (perturbed host
//     rates, shared/dedicated links, derated zones) is rendered to the
//     declarative text format, reparsed, and solved over. Invariants: the
//     render→parse round trip is lossless (zero skipped lines,
//     bit-identical effective specs); injected garbage lines skip with
//     per-class counters without disturbing well-formed declarations;
//     Platform::flat reproduces the catalog estimator 0 ULP; fair sharing
//     never gains bandwidth from extra flows; allreduce is exactly two
//     bcasts; plans over the platform are bit-identical across repeated
//     solves and thread counts.
//
//   sharded — a seeded {1, 2, 4, 8}-shard serving tier (consistent-hash
//     router, fan-out-replicated boards, cross-shard dedup) runs a request
//     stream mixing ring-routed and sprayed landings, epoch bumps and
//     seeded cache wipes, in lockstep with a single-shard oracle fed the
//     identical updates. Invariants: every tier response is
//     fingerprint-identical to the oracle's at the same epoch; per-shard
//     counters sum to the aggregate and the outcome classes partition the
//     requests; the solve ledger balances the solve counter, with zero
//     duplicate solves whenever no cache wipe fired.
//
//   wire — the plan tier's wire boundary (src/net) is invisible. Codec:
//     every message type round-trips byte-identically through seeded chunk
//     splits (a decoded request re-canonicalizes to the IDENTICAL cache
//     key, a decoded plan reproduces its fingerprint byte for byte), and
//     each corruption class — flipped payload bit, flipped magic,
//     truncation, splice, unknown version/type, overlong declaration,
//     malformed payload — rejects with exactly the expected class counter,
//     never a crash. End to end: a router-aware client over a seeded
//     {1,2,4,8}-shard PlanServerLoop (with mid-stream epoch bumps) serves
//     plans fingerprint-identical to the in-process 1-shard oracle with a
//     zero forwarding counter and zero codec rejects; under seeded wire
//     chaos (torn writes, drops, short reads) every async submission still
//     completes exactly once — verified plan, explicit shed, or error.
//
//   warmstart — one MarketBoard under a random epoch-delta stream (random
//     dirty-group sets plus empty forced bumps) is served by two warm
//     services at optimizer threads 1 and 8, in lockstep with the cold
//     solve() oracle. Invariants: every warm plan is fingerprint-identical
//     to a cold solve of its snapshot at both thread counts; a scope's
//     first solve reuses zero tables, a re-plan's table span never changes,
//     and a clean bump (no history moved since the scope's last solve)
//     rebuilds zero tables; warm accounting is thread-count invariant;
//     replan_count matches an independently tracked re-solve census.
//
// Every observable a scenario digests is deterministic at any thread count,
// so `run_scenario(seed).digest` is byte-comparable across machines and
// pool widths — that is the property the fuzz driver self-checks.
#pragma once

#include <cstdint>
#include <string>

namespace sompi::fi {

struct ScenarioOutcome {
  std::uint64_t seed = 0;
  std::string kind;
  bool failed = false;
  /// First violated invariant (empty when clean).
  std::string detail;
  /// Order-sensitive hash of every deterministic observable of the run.
  std::uint64_t digest = 0;
};

const char* scenario_kind_name(std::uint64_t seed);

/// Runs the scenario selected by `seed`. Deterministic: same seed → same
/// outcome, digest included, at any thread count.
ScenarioOutcome run_scenario(std::uint64_t seed);

}  // namespace sompi::fi
