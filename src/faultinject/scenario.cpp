#include "faultinject/scenario.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/compress.h"
#include "checkpoint/incremental.h"
#include "checkpoint/multilevel.h"
#include "checkpoint/redundancy.h"
#include "checkpoint/state_buffer.h"
#include "checkpoint/storage.h"
#include "cloud/catalog.h"
#include "common/rng.h"
#include "core/optimizer.h"
#include "core/ondemand.h"
#include "core/schedule.h"
#include "faultinject/faulty_store.h"
#include "faultinject/injector.h"
#include "feed/pipeline.h"
#include "feed/tick_source.h"
#include "minimpi/runtime.h"
#include "platform/models.h"
#include "platform/parser.h"
#include "platform/platform.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/market_board.h"
#include "service/plan_service.h"
#include "service/sharded/sharded_service.h"
#include "sim/replay.h"
#include "trace/market.h"

namespace sompi::fi {

namespace {

// ---------------------------------------------------------------------------
// Deterministic observables → one order-sensitive 64-bit digest.

std::uint64_t fnv1a_bytes(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

class Digest {
 public:
  void mix(std::uint64_t v) {
    std::uint64_t s = h_ ^ v;
    h_ = splitmix64(s);
  }
  void mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix(bool b) { mix(static_cast<std::uint64_t>(b ? 1 : 2)); }
  void mix(const std::string& s) {
    mix(fnv1a_bytes(std::as_bytes(std::span<const char>(s.data(), s.size()))));
  }
  void mix_bytes(std::span<const std::byte> bytes) { mix(fnv1a_bytes(bytes)); }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x5EEDD16E57ULL;
};

/// Collects invariant violations from any rank thread; the first one becomes
/// the scenario's failure detail.
class Violations {
 public:
  void record(std::string detail) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_.empty()) first_ = std::move(detail);
  }
  std::string first() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }
  bool any() const { return !first().empty(); }

 private:
  mutable std::mutex mutex_;
  std::string first_;
};

// ---------------------------------------------------------------------------
// Scenario 0/1: coordinated checkpointing under chaos.
//
// An iterative app whose per-rank state at iteration i is a pure function of
// (seed, rank, i) — so a restore can be verified byte-for-byte against a
// recomputation. Ranks run lockstep (tick → allreduce → maybe save), which
// keeps every injector stream's op sequence deterministic even when a fault
// kills the world mid-protocol: per-rank storage keys serialize each rank's
// own traffic, and no storage op sits between a collective and the next
// collective where a racing kill could skip it.

double state_value(std::uint64_t seed, int rank, int iter, std::size_t j) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
                    (static_cast<std::uint64_t>(iter) * 0x9E3779B97F4A7C15ULL) ^ j;
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
}

std::vector<std::byte> expected_state(std::uint64_t seed, int rank, int iter,
                                      std::size_t doubles) {
  std::vector<double> data(doubles);
  for (std::size_t j = 0; j < doubles; ++j) data[j] = state_value(seed, rank, iter, j);
  StateWriter w;
  w.write<std::int32_t>(iter);
  w.write_vec(data);
  return w.take();
}

/// Abstracts Checkpointer vs IncrementalCheckpointer for the shared harness.
struct CkptOps {
  std::function<int(mpi::Comm&, std::span<const std::byte>)> save;
  std::function<std::optional<std::vector<std::byte>>(mpi::Comm&)> load;
  std::function<bool(mpi::Comm&)> has;
  std::function<int()> latest;
};

ScenarioOutcome run_checkpoint_scenario(std::uint64_t seed, bool incremental) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = incremental ? "incremental" : "checkpoint";

  Rng rng(seed ^ 0xC4EC4EC4EC4ULL);
  const int ranks = 1 + static_cast<int>(rng.uniform_index(4));
  const int total_iters = 6 + static_cast<int>(rng.uniform_index(18));
  const int ckpt_every = 1 + static_cast<int>(rng.uniform_index(4));
  const std::size_t doubles = 24 + rng.uniform_index(72);
  const std::size_t block = 64 + rng.uniform_index(3) * 64;

  FaultPlan plan = FaultPlan::from_seed(seed);
  FaultInjector injector(plan);
  MemoryStore inner;
  FaultyStore store(&inner, &injector);

  Checkpointer full(&store, "fuzz", &injector);
  IncrementalCheckpointer inc(&store, "fuzz", block, &injector);
  CkptOps ops;
  if (incremental) {
    ops.save = [&](mpi::Comm& c, std::span<const std::byte> s) { return inc.save(c, s); };
    ops.load = [&](mpi::Comm& c) { return inc.load_latest(c); };
    ops.has = [&](mpi::Comm& c) { return inc.has_snapshot(c); };
    ops.latest = [&] { return inc.latest_version(); };
  } else {
    ops.save = [&](mpi::Comm& c, std::span<const std::byte> s) { return full.save(c, s); };
    ops.load = [&](mpi::Comm& c) { return full.load_latest(c); };
    ops.has = [&](mpi::Comm& c) { return full.has_snapshot(c); };
    ops.latest = [&] { return full.latest_version(); };
  }

  Violations violations;
  // Written by rank 0 only; reads happen after join() (which synchronizes).
  std::vector<std::pair<int, int>> committed;  // (version, iter), in commit order
  int max_attempted = 0;
  int last_restored = -1;

  const auto rank_fn = [&](mpi::Comm& comm) {
    int iter = 0;
    if (ops.has(comm)) {
      const auto blob = ops.load(comm);
      if (!blob) {
        violations.record("has_snapshot true but load_latest returned nothing");
        return;
      }
      StateReader reader(*blob);
      iter = reader.read<std::int32_t>();
      if (comm.rank() == 0) {
        int max_committed = 0;
        for (const auto& [v, it] : committed) max_committed = std::max(max_committed, it);
        if (iter < max_committed)
          violations.record("restore regressed below a recorded commit: iter " +
                            std::to_string(iter) + " < " + std::to_string(max_committed));
        if (iter > max_attempted)
          violations.record("restored progress exceeds last attempted checkpoint: iter " +
                            std::to_string(iter) + " > " + std::to_string(max_attempted));
        if (iter < last_restored)
          violations.record("restored progress regressed across attempts");
        last_restored = iter;
      }
      const auto want = expected_state(seed, comm.rank(), iter, doubles);
      if (*blob != want)
        violations.record("restored state of rank " + std::to_string(comm.rank()) +
                          " does not match the bytes saved at iteration " +
                          std::to_string(iter));
    }
    while (iter < total_iters) {
      comm.tick();
      (void)comm.allreduce(state_value(seed, comm.rank(), iter, 0), mpi::ReduceOp::kSum);
      ++iter;
      if (iter % ckpt_every == 0 || iter == total_iters) {
        if (comm.rank() == 0) max_attempted = std::max(max_attempted, iter);
        const auto bytes = expected_state(seed, comm.rank(), iter, doubles);
        const int version = ops.save(comm, bytes);
        if (comm.rank() == 0) committed.emplace_back(version, iter);
      }
    }
  };

  // Chaos retry loop. Once the plan's attempt budget is spent the injector
  // is quiesced (deterministically, at an attempt boundary), so the next
  // attempt runs clean — completion within max_attempts is itself an
  // invariant.
  const int max_attempts = static_cast<int>(plan.max_faults) + 4;
  bool completed = false;
  int attempts = 0;
  for (; attempts < max_attempts && !completed; ++attempts) {
    if (attempts >= static_cast<int>(plan.max_faults) + 1) injector.quiesce();
    const mpi::RunResult result =
        attempts == 0 ? mpi::Runtime::run_with_plan(ranks, rank_fn, plan)
                      : mpi::Runtime::run(ranks, rank_fn);
    if (std::getenv("SOMPI_FUZZ_DEBUG") != nullptr) {
      std::string line = "dbg seed=" + std::to_string(seed) + " attempt=" +
                         std::to_string(attempts) + " completed=" +
                         std::to_string(result.completed ? 1 : 0) + " killed=" +
                         std::to_string(result.killed ? 1 : 0) + " injected=" +
                         std::to_string(injector.injected_count()) + " latest=" +
                         std::to_string(ops.latest()) + " errors=";
      for (const auto& e : result.errors) line += "[" + e + "]";
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    if (violations.any()) break;
    completed = result.completed;
    for (const std::string& err : result.errors) {
      if (!InjectedFault::describes(err)) {
        violations.record("non-injected error escaped: " + err);
        break;
      }
    }
    if (violations.any()) break;
  }
  if (!violations.any() && !completed)
    violations.record("run did not complete within the fault budget (" +
                      std::to_string(max_attempts) + " attempts)");

  // Post-mortem over the raw store, chaos disabled: the latest committed
  // snapshot must be the final state of every rank.
  if (!violations.any()) {
    Checkpointer verify_full(&inner, "fuzz");
    IncrementalCheckpointer verify_inc(&inner, "fuzz", block);
    const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
      const auto blob = incremental ? verify_inc.load_latest(comm) : verify_full.load_latest(comm);
      if (!blob) {
        violations.record("no committed snapshot after a completed run");
        return;
      }
      const auto want = expected_state(seed, comm.rank(), total_iters, doubles);
      if (*blob != want)
        violations.record("final committed snapshot of rank " + std::to_string(comm.rank()) +
                          " is not the final state");
    });
    if (!result.completed && !violations.any())
      violations.record("chaos-free verification world failed");
  }

  if (std::getenv("SOMPI_FUZZ_DEBUG") != nullptr) {
    std::string line = "dbg seed=" + std::to_string(seed) +
                       " attempts=" + std::to_string(attempts) +
                       " injected=" + std::to_string(injector.injected_count()) +
                       " latency=" + std::to_string(injector.simulated_latency_ms()) +
                       " latest=" + std::to_string(ops.latest()) + " committed=";
    for (const auto& [v, it] : committed)
      line += "(" + std::to_string(v) + "," + std::to_string(it) + ")";
    std::vector<std::pair<std::string, std::uint64_t>> streams;
    for (const auto& [k, n] : injector.op_counts()) streams.emplace_back(k, n);
    std::sort(streams.begin(), streams.end());
    for (const auto& [k, n] : streams) line += " " + k + "=" + std::to_string(n);
    std::fprintf(stderr, "%s\n", line.c_str());
  }

  Digest digest;
  digest.mix(out.kind);
  digest.mix(static_cast<std::uint64_t>(ranks));
  digest.mix(static_cast<std::uint64_t>(total_iters));
  digest.mix(static_cast<std::uint64_t>(ckpt_every));
  digest.mix(static_cast<std::uint64_t>(attempts));
  digest.mix(static_cast<std::uint64_t>(committed.size()));
  for (const auto& [v, it] : committed) {
    digest.mix(static_cast<std::uint64_t>(v));
    digest.mix(static_cast<std::uint64_t>(it));
  }
  digest.mix(injector.injected_count());
  digest.mix(injector.simulated_latency_ms());
  digest.mix(static_cast<std::uint64_t>(ops.latest()));
  for (int r = 0; r < ranks; ++r)
    digest.mix_bytes(expected_state(seed, r, total_iters, doubles));
  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 2: trace replay under forced spot kills.

Digest replay_digest(const ReplayResult& r) {
  Digest d;
  d.mix(r.cost_usd);
  d.mix(r.spot_cost_usd);
  d.mix(r.od_cost_usd);
  d.mix(r.storage_cost_usd);
  d.mix(r.time_h);
  d.mix(r.completed_on_spot);
  d.mix(r.used_od_recovery);
  d.mix(r.recovered_ratio);
  for (const auto& g : r.groups) {
    d.mix(g.name);
    d.mix(g.lifetime_h);
    d.mix(g.completed);
    d.mix(g.killed);
    d.mix(static_cast<std::uint64_t>(g.checkpoints));
    d.mix(g.cost_usd);
    d.mix(g.saved_fraction);
  }
  return d;
}

ScenarioOutcome run_replay_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "replay";
  Violations violations;

  Rng rng(seed ^ 0x5CE9A7105EEDULL);
  const Catalog catalog = paper_catalog();
  const MarketProfile profile = rng.bernoulli(0.5)
                                    ? paper_market_profile(catalog)
                                    : random_market_profile(catalog, rng);
  const double days = 1.0 + rng.uniform(0.0, 2.0);
  const Market market = generate_market(catalog, profile, days, 0.25, rng());

  Plan plan;
  plan.app = "fuzz";
  plan.step_hours = 0.25;
  plan.deadline_h = 1000.0;
  plan.state_gb = rng.uniform(0.0, 2.0);
  plan.od.type_index = rng.uniform_index(catalog.types().size());
  plan.od.t_h = rng.uniform(2.0, 30.0);
  plan.od.instances = 1 + static_cast<int>(rng.uniform_index(8));
  plan.od.rate_usd_h = rng.uniform(0.2, 5.0);
  plan.od.feasible = true;
  const auto all_groups = catalog.all_groups();
  const std::size_t n_groups = rng.uniform_index(4);  // 0 = pure on-demand run
  for (std::size_t i = 0; i < n_groups; ++i) {
    GroupPlan g;
    g.spec = all_groups[rng.uniform_index(all_groups.size())];
    g.name = catalog.group_name(g.spec) + "#" + std::to_string(i);
    g.instances = 1 + static_cast<int>(rng.uniform_index(4));
    g.t_steps = 4 + static_cast<int>(rng.uniform_index(40));
    g.f_steps = 1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(g.t_steps)));
    g.o_steps = rng.uniform(0.0, 1.5);
    g.r_steps = rng.uniform(0.0, 1.5);
    g.bid_usd = rng.uniform(0.005, 0.6);
    plan.groups.push_back(std::move(g));
  }
  const double start_h = rng.uniform(0.0, days * 24.0);
  const BillingModel billing = static_cast<BillingModel>(rng.uniform_index(3));

  const FaultPlan fplan = FaultPlan::from_seed(seed);
  const FaultInjector injector(fplan);
  ReplayConfig config;
  config.billing = billing;
  config.faults = &injector;
  const ReplayEngine engine(&market, config);

  const ReplayResult r1 = engine.replay(plan, start_h);
  const ReplayResult r2 = engine.replay(plan, start_h);
  if (replay_digest(r1).value() != replay_digest(r2).value())
    violations.record("same-seed replay is not bit-identical");

  // A quiet injector must be indistinguishable from no injector at all.
  const FaultInjector quiet(FaultPlan::quiet(seed));
  ReplayConfig quiet_config = config;
  quiet_config.faults = &quiet;
  ReplayConfig bare_config = config;
  bare_config.faults = nullptr;
  const ReplayResult rq = ReplayEngine(&market, quiet_config).replay(plan, start_h);
  const ReplayResult rn = ReplayEngine(&market, bare_config).replay(plan, start_h);
  if (replay_digest(rq).value() != replay_digest(rn).value())
    violations.record("quiet injector changed the replay outcome");

  const auto in_unit = [](double x) { return x >= 0.0 && x <= 1.0; };
  if (!std::isfinite(r1.cost_usd) || !std::isfinite(r1.time_h) || r1.time_h < 0.0)
    violations.record("replay produced a non-finite or negative outcome");
  if (r1.od_cost_usd < 0.0 || r1.storage_cost_usd < 0.0)
    violations.record("negative on-demand or storage cost");
  if (!in_unit(r1.recovered_ratio)) violations.record("recovered_ratio outside [0, 1]");
  for (const auto& g : r1.groups)
    if (!in_unit(g.saved_fraction)) violations.record("saved_fraction outside [0, 1]");
  if (!plan.groups.empty() && r1.completed_on_spot == r1.used_od_recovery)
    violations.record("exactly one of completed_on_spot / used_od_recovery must hold");

  // The paper's deadline guarantee, restated for replay: even when every
  // replica dies at its most damaging instant, the on-demand fallback lands
  // within  max_i max_t (t·h + Ratio_i(t)·T_od).
  if (!plan.groups.empty() && r1.used_od_recovery) {
    double bound = 0.0;
    for (const auto& g : plan.groups) {
      const GroupSchedule sched(g.t_steps, g.f_steps, g.o_steps, g.r_steps);
      const int last = static_cast<int>(std::ceil(sched.wall_duration())) + 1;
      for (int t = 0; t <= last; ++t)
        bound = std::max(bound, static_cast<double>(t) * plan.step_hours +
                                    sched.ratio_at(static_cast<double>(t)) * plan.od.t_h);
    }
    if (r1.time_h > bound + 1e-6)
      violations.record("on-demand fallback missed the worst-case deadline bound: " +
                        std::to_string(r1.time_h) + " > " + std::to_string(bound));
  }

  Digest digest;
  digest.mix(out.kind);
  digest.mix(replay_digest(r1).value());
  digest.mix(replay_digest(rq).value());
  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 3: PlanService under shed pressure and epoch bumps.

OptimizerConfig tiny_optimizer_config() {
  OptimizerConfig opt;
  opt.max_candidates = 2;
  opt.max_groups = 1;
  opt.setup.log_levels = 2;
  opt.setup.failure.samples = 200;
  opt.ratio_bins = 16;
  return opt;
}

ScenarioOutcome run_service_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "service";
  Violations violations;

  Rng rng(seed ^ 0x5E121CE5EEDULL);
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  MarketBoard board(generate_market(catalog, paper_market_profile(catalog), 1.5, 0.25, rng()));

  const FaultPlan fplan = FaultPlan::from_seed(seed);
  FaultInjector injector(fplan);
  ServiceConfig config;
  config.cache.shards = 2;
  config.cache.capacity = 8;
  config.max_concurrent_solves = 2;
  config.max_queued_solves = 4;
  config.latency_window = 32;
  config.opt = tiny_optimizer_config();
  config.faults = &injector;
  PlanService service(&catalog, &estimator, &board, config);

  // A small request pool; the sequence draws from it with repeats, so cache
  // hits arise naturally — and must stay fingerprint-identical to fresh
  // solves even while epoch bumps race through the sequence.
  const OnDemandSelector selector(&catalog, &estimator);
  std::vector<PlanRequest> pool;
  for (const char* name : {"BT", "SP", "FT"}) {
    PlanRequest r;
    r.app = paper_profile(name);
    r.deadline_h = selector.baseline(r.app).t_h * (1.2 + rng.uniform(0.0, 3.0));
    pool.push_back(std::move(r));
  }
  const std::size_t n_requests = 5 + rng.uniform_index(4);

  Digest digest;
  digest.mix(out.kind);
  for (std::size_t i = 0; i < n_requests; ++i) {
    if (injector.epoch_bump_at(i)) board.ingest({});  // mid-sequence invalidation
    const PlanRequest& request = pool[rng.uniform_index(pool.size())];
    const MarketSnapshot snap = board.snapshot();
    const PlanResponse response = service.serve(request);
    digest.mix(std::string(outcome_label(response.outcome)));
    digest.mix(response.epoch);
    if (response.epoch != snap.epoch)
      violations.record("single-threaded serve answered at an unexpected epoch");
    if (response.outcome == PlanOutcome::kShed) {
      if (response.plan != nullptr) violations.record("shed response carried a plan");
      continue;
    }
    if (response.plan == nullptr) {
      violations.record("non-shed response carried no plan");
      continue;
    }
    const Plan fresh = service.solve(canonicalized(request), *snap.market);
    if (plan_fingerprint(*response.plan) != plan_fingerprint(fresh)) {
      violations.record(std::string("served plan (") + outcome_label(response.outcome) +
                        ") is not fingerprint-identical to a fresh solve at its epoch");
      continue;
    }
    digest.mix(plan_fingerprint(*response.plan));
  }

  const ServiceStats stats = service.stats();
  if (stats.requests != stats.hits + stats.solves + stats.dedup_joins + stats.sheds)
    violations.record("service stats do not tally");
  digest.mix(stats.hits);
  digest.mix(stats.solves);
  digest.mix(stats.sheds);
  digest.mix(stats.stale_evicted);

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 4: the optimizer is a pure function of its inputs.

ScenarioOutcome run_plan_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "plan";
  Violations violations;

  Rng rng(seed ^ 0x71A2DE7E12ULL);
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  const MarketProfile profile = rng.bernoulli(0.5)
                                    ? paper_market_profile(catalog)
                                    : random_market_profile(catalog, rng);
  const Market market = generate_market(catalog, profile, 1.0 + rng.uniform(0.0, 1.0), 0.25,
                                        rng());
  const char* names[] = {"BT", "SP", "LU", "FT", "IS"};
  const AppProfile app = paper_profile(names[rng.uniform_index(5)]);
  const double deadline_h =
      OnDemandSelector(&catalog, &estimator).baseline(app).t_h * (1.2 + rng.uniform(0.0, 3.0));

  OptimizerConfig config = tiny_optimizer_config();
  config.threads = 1;
  const SompiOptimizer serial(&catalog, &estimator, config);
  config.threads = 2;
  const SompiOptimizer pooled(&catalog, &estimator, config);

  const Plan p1 = serial.optimize(app, market, deadline_h);
  const Plan p2 = serial.optimize(app, market, deadline_h);
  const Plan p3 = pooled.optimize(app, market, deadline_h);
  const std::string fp = plan_fingerprint(p1);
  if (fp != plan_fingerprint(p2))
    violations.record("same-seed re-solve changed the plan fingerprint");
  if (fp != plan_fingerprint(p3))
    violations.record("thread count changed the plan fingerprint");

  Digest digest;
  digest.mix(out.kind);
  digest.mix(fp);
  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 5: the feed pipeline under tick chaos.
//
// A recorded market is split into a visible prefix (priming the board) and a
// hidden tail (the "live" feed). The tail is replayed twice through
// identically seeded per-group chaos chains: once synchronously from a
// single round-robin consumer, once through the bounded queue from several
// producer threads. Both runs must commit bit-identical price matrices and
// epoch sequences — the pipeline's determinism gate.

/// Round-robin one tick from each per-group source until all are exhausted,
/// delivering them through `deliver`. Per-group order is preserved (the only
/// order determinism is defined over); cross-group order is deliberately
/// interleaved.
void drain_round_robin(std::vector<std::unique_ptr<feed::TickSource>>& sources,
                       const std::function<void(const feed::Tick&)>& deliver) {
  bool any = true;
  while (any) {
    any = false;
    for (auto& source : sources) {
      if (!source) continue;
      if (std::optional<feed::Tick> tick = source->next()) {
        deliver(*tick);
        any = true;
      } else {
        source.reset();
      }
    }
  }
}

ScenarioOutcome run_feed_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "feed";
  Violations violations;

  Rng rng(seed ^ 0xFEEDD1CE5ULL);
  const Catalog catalog = paper_catalog();
  const Market full = generate_market(catalog, paper_market_profile(catalog),
                                      1.0 + rng.uniform(0.0, 1.0), 0.25, rng());
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = len / 2;
  const std::vector<CircleGroupSpec> all_groups = catalog.all_groups();

  feed::FeedConfig fcfg;
  fcfg.window_steps = 16 + rng.uniform_index(32);
  fcfg.publish_every = 4 + rng.uniform_index(12);
  fcfg.late_horizon = 2 + rng.uniform_index(4);
  fcfg.queue_capacity = 32 + rng.uniform_index(96);
  fcfg.estimate_bid_levels = 4;
  fcfg.estimation.samples = 64;
  fcfg.estimation.horizon_steps = 24;
  const FaultPlan fplan = FaultPlan::from_seed(seed);

  const auto chaos_chains = [&](FaultInjector& injector) {
    // One replay + chaos chain per group: decision streams are keyed by
    // group, so the post-chaos stream is sharding-independent.
    std::vector<std::unique_ptr<feed::TickSource>> inners;
    std::vector<std::unique_ptr<feed::TickSource>> chains;
    for (const CircleGroupSpec& g : all_groups) {
      inners.push_back(std::make_unique<feed::ReplayTickSource>(
          &full, std::vector<CircleGroupSpec>{g}, visible, len - visible));
      chains.push_back(
          std::make_unique<feed::ChaosTickSource>(inners.back().get(), &injector));
    }
    return std::pair(std::move(inners), std::move(chains));
  };

  // --- Run A: synchronous, single consumer, interleaved group order. ---
  MarketBoard board_a(full.window(0, visible));
  feed::FeedPipeline pipe_a(&board_a, fcfg);
  FaultInjector injector_a(fplan);
  {
    auto [inners, chains] = chaos_chains(injector_a);
    drain_round_robin(chains, [&](const feed::Tick& t) { pipe_a.offer(t); });
  }
  pipe_a.flush();

  // --- Run B: multi-producer through the bounded queue. ---
  MarketBoard board_b(full.window(0, visible));
  feed::FeedPipeline pipe_b(&board_b, fcfg);
  FaultInjector injector_b(fplan);
  {
    auto [inners, chains] = chaos_chains(injector_b);
    const std::size_t producers = 2 + rng.uniform_index(3);
    pipe_b.start();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        // Producer p owns groups p, p+producers, ... — round-robin within
        // its shard so per-group FIFO order is preserved.
        std::vector<std::unique_ptr<feed::TickSource>> shard;
        for (std::size_t g = p; g < chains.size(); g += producers)
          shard.push_back(std::move(chains[g]));
        drain_round_robin(shard, [&](const feed::Tick& t) { pipe_b.enqueue(t); });
      });
    }
    for (auto& t : threads) t.join();
    pipe_b.stop();
  }
  pipe_b.flush();

  // --- Invariant: producer count is invisible. ---
  if (pipe_a.commit_digest() != pipe_b.commit_digest())
    violations.record("multi-producer run diverged from the synchronous run (digest)");
  const feed::FeedStats stats_a = pipe_a.stats();
  const feed::FeedStats stats_b = pipe_b.stats();
  if (stats_a.ticks_ingested != stats_b.ticks_ingested ||
      stats_a.committed_steps != stats_b.committed_steps ||
      stats_a.committed_values != stats_b.committed_values ||
      stats_a.gaps_filled != stats_b.gaps_filled ||
      stats_a.duplicates_dropped != stats_b.duplicates_dropped ||
      stats_a.late_dropped != stats_b.late_dropped ||
      stats_a.epochs_published != stats_b.epochs_published)
    violations.record("multi-producer run diverged from the synchronous run (stats)");
  const auto log_a = pipe_a.publish_log();
  const auto log_b = pipe_b.publish_log();
  if (log_a.size() != log_b.size())
    violations.record("publish logs differ in length across producer counts");
  for (std::size_t i = 0; i < std::min(log_a.size(), log_b.size()); ++i)
    if (log_a[i].epoch != log_b[i].epoch || log_a[i].rows != log_b[i].rows ||
        log_a[i].end_step != log_b[i].end_step)
      violations.record("publish logs diverged across producer counts");

  // --- Invariant: conservation laws. ---
  const std::size_t groups_n = all_groups.size();
  if (stats_a.ticks_ingested !=
      stats_a.committed_values + stats_a.duplicates_dropped + stats_a.late_dropped)
    violations.record("tick conservation violated");
  if (stats_a.committed_values + stats_a.gaps_filled !=
      stats_a.committed_steps * groups_n)
    violations.record("commit conservation violated");

  // --- Invariant: without chaos the committed market IS the recorded one. ---
  MarketBoard board_c(full.window(0, visible));
  feed::FeedPipeline pipe_c(&board_c, fcfg);
  feed::ReplayTickSource clean(&full, {}, visible, len - visible);
  pipe_c.ingest(clean);
  pipe_c.flush();
  const feed::FeedStats stats_c = pipe_c.stats();
  if (stats_c.gaps_filled != 0 || stats_c.duplicates_dropped != 0 ||
      stats_c.late_dropped != 0)
    violations.record("clean replay reported chaos counters");
  const MarketSnapshot snap_c = board_c.snapshot();
  bool clean_match = snap_c.market->trace({0, 0}).steps() == len;
  if (clean_match)
    for (const CircleGroupSpec& g : all_groups)
      for (std::size_t s = 0; s < len && clean_match; ++s)
        if (snap_c.market->trace(g).price(s) != full.trace(g).price(s))
          clean_match = false;
  if (!clean_match)
    violations.record("clean replay did not reconstruct the recorded market bit-identically");

  // --- Invariant: plans at feed-published epochs are cache-coherent. ---
  const ExecTimeEstimator estimator;
  ServiceConfig scfg;
  scfg.cache.shards = 2;
  scfg.cache.capacity = 8;
  scfg.opt = tiny_optimizer_config();
  PlanService service(&catalog, &estimator, &board_a, scfg);
  const OnDemandSelector selector(&catalog, &estimator);
  PlanRequest request;
  request.app = paper_profile("BT");
  request.deadline_h = selector.baseline(request.app).t_h * (1.2 + rng.uniform(0.0, 2.0));
  const MarketSnapshot snap_a = board_a.snapshot();
  const PlanResponse response = service.serve(request);
  if (response.outcome == PlanOutcome::kShed || response.plan == nullptr) {
    violations.record("un-shed service shed a request at a feed-published epoch");
  } else {
    if (response.epoch != snap_a.epoch)
      violations.record("service answered at an unexpected feed epoch");
    const Plan fresh = service.solve(canonicalized(request), *snap_a.market);
    if (plan_fingerprint(*response.plan) != plan_fingerprint(fresh))
      violations.record("plan served on a feed-published market is not "
                        "fingerprint-identical to a fresh solve");
  }

  Digest digest;
  digest.mix(out.kind);
  digest.mix(pipe_a.commit_digest());
  digest.mix(stats_a.ticks_ingested);
  digest.mix(stats_a.committed_steps);
  digest.mix(stats_a.committed_values);
  digest.mix(stats_a.gaps_filled);
  digest.mix(stats_a.duplicates_dropped);
  digest.mix(stats_a.late_dropped);
  digest.mix(stats_a.epochs_published);
  for (const feed::PublishRecord& r : log_a) {
    digest.mix(r.epoch);
    digest.mix(r.rows);
    digest.mix(r.end_step);
  }
  const feed::FeedEstimates estimates = pipe_a.latest_estimates();
  digest.mix(estimates.window_end_step);
  for (const feed::GroupEstimate& e : estimates.groups) {
    digest.mix(e.window_max_price);
    for (const double v : e.expected_price) digest.mix(v);
    for (const double v : e.mtbf_steps) digest.mix(v);
  }
  if (response.plan != nullptr) digest.mix(plan_fingerprint(*response.plan));

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 6: the multi-level checkpoint hierarchy under chaos.
//
// The scenario-0 lockstep app runs over a MultiLevelCheckpointer (node-local
// cache + peer redundancy + S3-sim remote) while the plan's multi-level
// channels fire: single-node cache wipes, peer shard losses, and flush kills
// that leave remote versions uncommitted. Per version at most ONE of
// {single-rank cache wipe, single shard loss} is injected, so the newest
// committed version is always recoverable at the cache level — which makes
// the post-mortem gates exact:
//
//   * the final restore returns the final iteration's exact bytes WITHOUT a
//     single billed S3-sim GET (single-rank losses resolve from peers);
//   * after a total cache loss, the newest REMOTE-committed version restores
//     with exactly `ranks` GETs and bytes matching a recorded commit — or,
//     when every flush was killed, load_latest reports nothing rather than
//     serving a half-flushed version;
//   * the optimizer's multi-level policy set never costs more than the
//     single-level one (exact search over a superset), and the empty policy
//     list keeps the degenerate fingerprint byte-identical.

ScenarioOutcome run_multilevel_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "multilevel";
  Violations violations;

  Rng rng(seed ^ 0x3117E7E1ULL);
  const int ranks = 2 + static_cast<int>(rng.uniform_index(4));
  const int total_iters = 6 + static_cast<int>(rng.uniform_index(14));
  const int ckpt_every = 1 + static_cast<int>(rng.uniform_index(4));
  const std::size_t doubles = 24 + rng.uniform_index(72);
  const RedundancyScheme scheme = (ranks >= 3 && rng.bernoulli(0.5))
                                      ? RedundancyScheme::kXor
                                      : RedundancyScheme::kPartner;
  const bool rle = rng.bernoulli(0.5);

  const FaultPlan plan = FaultPlan::from_seed(seed);
  FaultInjector injector(plan);
  MemoryStore cache;
  S3Sim remote;
  MultiLevelConfig mcfg;
  mcfg.cache = &cache;
  mcfg.redundancy = scheme;
  mcfg.compression.mode = rle ? CompressionMode::kRle : CompressionMode::kNone;
  mcfg.compression.cpu_seconds_per_gb = 4.0;
  // Synchronous flush keeps every attempt's op sequence a pure function of
  // the committed-save sequence (an async worker would interleave
  // nondeterministically with the injector's per-key streams).
  MultiLevelCheckpointer ml(&remote, "fuzz-ml", mcfg, &injector);

  const auto cache_blob_key = [](int version, int rank) {
    return "fuzz-ml/l0/v" + std::to_string(version) + "/rank" + std::to_string(rank);
  };
  const auto shard_key = [](int version, int rank) {
    return "fuzz-ml/l1/v" + std::to_string(version) + "/shard" + std::to_string(rank);
  };

  // Written by rank 0 only; reads happen after join() (which synchronizes).
  std::vector<std::pair<int, int>> committed;  // (version, iter), commit order
  int max_attempted = 0;
  int last_restored = -1;

  const auto rank_fn = [&](mpi::Comm& comm) {
    int iter = 0;
    if (ml.has_snapshot(comm)) {
      const auto blob = ml.load_latest(comm);
      if (!blob) {
        violations.record("has_snapshot true but load_latest returned nothing");
        return;
      }
      StateReader reader(*blob);
      iter = reader.read<std::int32_t>();
      if (comm.rank() == 0) {
        if (iter > max_attempted)
          violations.record("restored progress exceeds last attempted checkpoint: iter " +
                            std::to_string(iter) + " > " + std::to_string(max_attempted));
        if (iter < last_restored)
          violations.record("restored progress regressed across attempts");
        last_restored = iter;
      }
      const auto want = expected_state(seed, comm.rank(), iter, doubles);
      if (*blob != want)
        violations.record("restored state of rank " + std::to_string(comm.rank()) +
                          " does not match the bytes saved at iteration " +
                          std::to_string(iter));
    }
    while (iter < total_iters) {
      comm.tick();
      (void)comm.allreduce(state_value(seed, comm.rank(), iter, 0), mpi::ReduceOp::kSum);
      ++iter;
      if (iter % ckpt_every == 0 || iter == total_iters) {
        if (comm.rank() == 0) max_attempted = std::max(max_attempted, iter);
        const auto bytes = expected_state(seed, comm.rank(), iter, doubles);
        const int version = ml.save(comm, bytes);
        if (comm.rank() == 0) {
          committed.emplace_back(version, iter);
          // Post-save chaos, one loss per version at most (see the header
          // comment): a whole node dies (blob + own shard), or one peer
          // shard rots away. Other ranks are already blocked on the next
          // collective, so the wipe races with no storage traffic.
          const std::string vtag = std::to_string(version);
          if (injector.fires(Channel::kCacheWipe, "wipe/v" + vtag)) {
            std::uint64_t s = seed ^ (0x51C7ULL + static_cast<std::uint64_t>(version));
            const int victim =
                static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(ranks));
            cache.remove(cache_blob_key(version, victim));
            cache.remove(shard_key(version, victim));
          } else if (injector.fires(Channel::kPartnerLoss, "peer/v" + vtag)) {
            std::uint64_t s = seed ^ (0x9EE2ULL + static_cast<std::uint64_t>(version));
            const int victim =
                static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(ranks));
            cache.remove(shard_key(version, victim));
          }
        }
      }
    }
  };

  const int max_attempts = static_cast<int>(plan.max_faults) + 4;
  bool completed = false;
  int attempts = 0;
  for (; attempts < max_attempts && !completed; ++attempts) {
    if (attempts >= static_cast<int>(plan.max_faults) + 1) injector.quiesce();
    const mpi::RunResult result =
        attempts == 0 ? mpi::Runtime::run_with_plan(ranks, rank_fn, plan)
                      : mpi::Runtime::run(ranks, rank_fn);
    if (violations.any()) break;
    completed = result.completed;
    for (const std::string& err : result.errors) {
      if (!InjectedFault::describes(err)) {
        violations.record("non-injected error escaped: " + err);
        break;
      }
    }
    if (violations.any()) break;
  }
  if (!violations.any() && !completed)
    violations.record("run did not complete within the fault budget (" +
                      std::to_string(max_attempts) + " attempts)");

  // Post-mortem, chaos disabled. The newest committed version carries the
  // final iteration and is cache-recoverable by construction, so the restore
  // must return the final bytes without one billed S3-sim GET.
  MultiLevelCheckpointer verify(&remote, "fuzz-ml", mcfg, nullptr);
  if (!violations.any()) {
    const std::uint64_t gets_before = remote.get_count();
    const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
      const auto blob = verify.load_latest(comm);
      if (!blob) {
        violations.record("no committed snapshot after a completed run");
        return;
      }
      const auto want = expected_state(seed, comm.rank(), total_iters, doubles);
      if (*blob != want)
        violations.record("final committed snapshot of rank " + std::to_string(comm.rank()) +
                          " is not the final state");
    });
    if (!result.completed && !violations.any())
      violations.record("chaos-free verification world failed");
    if (remote.get_count() != gets_before)
      violations.record("cache-level restore performed " +
                        std::to_string(remote.get_count() - gets_before) +
                        " billed S3-sim GET(s); single-rank losses must resolve "
                        "from peers");
  }

  // Total cache loss: only REMOTE-committed versions may serve, each GET
  // billed, and a version whose flush was killed must stay invisible.
  if (!violations.any()) {
    for (const std::string& key : cache.list("")) cache.remove(key);
    std::vector<int> remote_versions;
    for (const std::string& key : remote.list("fuzz-ml/v"))
      if (key.size() > 7 && key.compare(key.size() - 7, 7, "/COMMIT") == 0)
        remote_versions.push_back(std::stoi(key.substr(9, key.size() - 7 - 9)));
    std::sort(remote_versions.begin(), remote_versions.end());

    MultiLevelCheckpointer cold(&remote, "fuzz-ml", mcfg, nullptr);
    if (remote_versions.empty()) {
      const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
        if (cold.has_snapshot(comm) || cold.load_latest(comm))
          violations.record("restore served a snapshot though no version was "
                            "remote-committed and the cache is gone");
      });
      if (!result.completed && !violations.any())
        violations.record("chaos-free cold-restore world failed");
    } else {
      const int newest = remote_versions.back();
      int want_iter = -1;
      for (const auto& [v, it] : committed)
        if (v == newest) want_iter = it;
      if (want_iter < 0) {
        violations.record("remote-committed version " + std::to_string(newest) +
                          " was never recorded as committed");
      } else {
        const std::uint64_t gets_before = remote.get_count();
        const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
          const auto blob = cold.load_latest(comm);
          if (!blob) {
            violations.record("remote-committed snapshot did not restore after "
                              "total cache loss");
            return;
          }
          const auto want = expected_state(seed, comm.rank(), want_iter, doubles);
          if (*blob != want)
            violations.record("remote restore of rank " + std::to_string(comm.rank()) +
                              " does not match the bytes committed at iteration " +
                              std::to_string(want_iter));
        });
        if (!result.completed && !violations.any())
          violations.record("chaos-free cold-restore world failed");
        if (violations.any() == false &&
            remote.get_count() - gets_before != static_cast<std::uint64_t>(ranks))
          violations.record("remote restore billed " +
                            std::to_string(remote.get_count() - gets_before) +
                            " GETs, expected exactly one per rank");
      }
    }
  }

  // Dominance gate: the multi-level policy set is a superset of {s3} and the
  // search is exact, so its optimum can never cost more — and the empty
  // policy list must stay fingerprint-identical to an explicit {s3}.
  Plan plan_single;
  Plan plan_multi;
  if (!violations.any()) {
    const Catalog catalog = paper_catalog();
    const ExecTimeEstimator estimator;
    const Market market = generate_market(catalog, random_market_profile(catalog, rng),
                                          1.0 + rng.uniform(0.0, 1.0), 0.25, rng());
    const char* names[] = {"BT", "SP", "LU", "FT", "IS"};
    const AppProfile app = paper_profile(names[rng.uniform_index(5)]);
    const double deadline_h = OnDemandSelector(&catalog, &estimator).baseline(app).t_h *
                              (1.2 + rng.uniform(0.0, 3.0));

    OptimizerConfig config = tiny_optimizer_config();
    const SompiOptimizer single(&catalog, &estimator, config);
    config.ckpt_policies = {CkptPolicy::single_s3()};
    const SompiOptimizer explicit_s3(&catalog, &estimator, config);
    config.ckpt_policies = {CkptPolicy::single_s3(), CkptPolicy::cache_s3(),
                            CkptPolicy::cache_xor_s3()};
    const SompiOptimizer multi(&catalog, &estimator, config);

    plan_single = single.optimize(app, market, deadline_h);
    plan_multi = multi.optimize(app, market, deadline_h);
    if (plan_multi.expected.cost_usd > plan_single.expected.cost_usd)
      violations.record("multi-level policy plan costs more than the single-level "
                        "plan despite an exact search over a superset");
    if (plan_fingerprint(plan_single) !=
        plan_fingerprint(explicit_s3.optimize(app, market, deadline_h)))
      violations.record("explicit {s3} policy list changed the degenerate plan "
                        "fingerprint");
  }

  const FlushStats fs = ml.flush_stats();
  const RecoveryStats rs = verify.recovery_stats();
  Digest digest;
  digest.mix(out.kind);
  digest.mix(static_cast<std::uint64_t>(ranks));
  digest.mix(static_cast<std::uint64_t>(total_iters));
  digest.mix(static_cast<std::uint64_t>(ckpt_every));
  digest.mix(std::string(redundancy_scheme_label(scheme)));
  digest.mix(rle);
  digest.mix(static_cast<std::uint64_t>(attempts));
  digest.mix(static_cast<std::uint64_t>(committed.size()));
  for (const auto& [v, it] : committed) {
    digest.mix(static_cast<std::uint64_t>(v));
    digest.mix(static_cast<std::uint64_t>(it));
  }
  digest.mix(injector.injected_count());
  digest.mix(fs.flushes_started);
  digest.mix(fs.flushes_completed);
  digest.mix(fs.flushes_killed);
  digest.mix(fs.bytes_before_compression);
  digest.mix(fs.bytes_flushed);
  digest.mix(rs.cache_loads);
  digest.mix(rs.peer_rebuilds);
  digest.mix(rs.remote_loads);
  digest.mix(remote.put_count());
  digest.mix(remote.get_count());
  digest.mix(remote.bytes_uploaded());
  digest.mix(remote.bytes_downloaded());
  digest.mix(plan_fingerprint(plan_single));
  digest.mix(plan_fingerprint(plan_multi));
  for (int r = 0; r < ranks; ++r)
    digest.mix_bytes(expected_state(seed, r, total_iters, doubles));
  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 7: a random heterogeneous platform through the whole stack.
//
// A seeded random platform (perturbed host rates, shared/dedicated links,
// derated zones) is rendered to the declarative text format, reparsed, and
// driven through the estimator and the optimizer. Invariants: the
// render→parse round trip is lossless (zero skipped lines, bit-identical
// effective specs at several flow counts); injected garbage lines are
// skipped and counted without disturbing the well-formed declarations;
// Platform::flat reproduces the catalog-only estimator 0 ULP; shared links
// never gain bandwidth from extra flows; allreduce composes as exactly two
// bcasts; and the plan solved over the random platform is bit-identical
// across repeated solves and thread counts.

/// Lossless double → text for the platform format: max_digits10 round-trips
/// the exact bit pattern through the parser's strtod.
std::string platform_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string render_platform(const platform::Platform& p) {
  std::string text;
  for (const platform::Host& h : p.hosts())
    text += "host " + h.type + " gips=" + platform_number(h.gips_per_core) +
            " nic_gbps=" + platform_number(h.nic_gbps) +
            " lat_us=" + platform_number(h.nic_latency_us) +
            " disk_mbps=" + platform_number(h.disk_mbps) + "\n";
  for (const platform::Link& l : p.links())
    text += "link " + l.name + " gbps=" + platform_number(l.gbps) +
            " lat_us=" + platform_number(l.latency_us) + (l.shared ? " shared" : "") + "\n";
  for (const platform::ZoneNode& z : p.zones())
    text += "zone " + z.name + " intra=" + p.link(z.intra_link).name +
            " uplink=" + p.link(z.uplink).name +
            " compute_scale=" + platform_number(z.compute_scale) + "\n";
  return text;
}

platform::Platform random_platform(const Catalog& catalog, Rng& rng) {
  std::vector<platform::Host> hosts;
  for (const InstanceType& t : catalog.types()) {
    if (rng.bernoulli(0.2)) continue;  // unmodeled type: catalog fallback path
    hosts.push_back(platform::Host{t.name, t.gips_per_core * rng.uniform(0.6, 1.1),
                                   t.net_gbps * rng.uniform(0.5, 1.5),
                                   t.net_latency_us * rng.uniform(0.5, 2.0),
                                   t.io_mbps * rng.uniform(0.5, 1.5)});
  }
  const std::size_t n_links = 2 + rng.uniform_index(3);
  std::vector<platform::Link> links;
  for (std::size_t i = 0; i < n_links; ++i)
    links.push_back(platform::Link{"l" + std::to_string(i), rng.uniform(0.5, 50.0),
                                   rng.uniform(0.0, 1000.0), rng.bernoulli(0.5)});
  std::vector<platform::ZoneNode> zones;
  for (const Zone& z : catalog.zones()) {
    if (rng.bernoulli(0.2)) continue;  // unmodeled zone: flat fallback path
    zones.push_back(platform::ZoneNode{z.name, rng.uniform_index(n_links),
                                       rng.uniform_index(n_links), rng.uniform(0.7, 1.0)});
  }
  return platform::Platform(std::move(hosts), std::move(links), std::move(zones));
}

void mix_spec(Digest& digest, const platform::EffectiveSpec& s) {
  digest.mix(static_cast<std::uint64_t>(s.cores));
  digest.mix(s.gips_per_core);
  digest.mix(s.net_gbps);
  digest.mix(s.net_latency_us);
  digest.mix(s.io_mbps);
  digest.mix(s.uplink_gbps);
  digest.mix(s.uplink_latency_us);
}

bool specs_identical(const platform::EffectiveSpec& a, const platform::EffectiveSpec& b) {
  return a.cores == b.cores &&
         std::bit_cast<std::uint64_t>(a.gips_per_core) ==
             std::bit_cast<std::uint64_t>(b.gips_per_core) &&
         std::bit_cast<std::uint64_t>(a.net_gbps) == std::bit_cast<std::uint64_t>(b.net_gbps) &&
         std::bit_cast<std::uint64_t>(a.net_latency_us) ==
             std::bit_cast<std::uint64_t>(b.net_latency_us) &&
         std::bit_cast<std::uint64_t>(a.io_mbps) == std::bit_cast<std::uint64_t>(b.io_mbps) &&
         std::bit_cast<std::uint64_t>(a.uplink_gbps) ==
             std::bit_cast<std::uint64_t>(b.uplink_gbps) &&
         std::bit_cast<std::uint64_t>(a.uplink_latency_us) ==
             std::bit_cast<std::uint64_t>(b.uplink_latency_us);
}

ScenarioOutcome run_platform_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "platform";
  Violations violations;
  Digest digest;
  digest.mix(out.kind);

  Rng rng(seed ^ 0x9E37A7F4C2B1ULL);
  const Catalog catalog = paper_catalog();
  const platform::Platform plat = random_platform(catalog, rng);

  // Render → parse round trip: lossless, no skipped lines, bit-identical
  // effective specs at several flow counts.
  const std::string text = render_platform(plat);
  platform::PlatformParseStats stats;
  const platform::Platform reparsed = platform::parse_platform(text, &stats);
  if (stats.skipped() != 0) violations.record("round-tripped platform text has skipped lines");
  if (stats.hosts_parsed != plat.hosts().size() || stats.links_parsed != plat.links().size() ||
      stats.zones_parsed != plat.zones().size())
    violations.record("round trip changed the platform entity counts");
  for (const InstanceType& type : catalog.types()) {
    for (const Zone& zone : catalog.zones()) {
      for (const int flows : {1, 3, 17}) {
        const platform::EffectiveSpec a = plat.effective(type, zone.name, flows);
        const platform::EffectiveSpec b = reparsed.effective(type, zone.name, flows);
        if (!specs_identical(a, b))
          violations.record("round trip changed an effective spec: " + type.name + "/" +
                            zone.name);
        if (flows == 1) mix_spec(digest, a);
        // Fair sharing can only take bandwidth away as flows contend.
        const platform::EffectiveSpec crowded = plat.effective(type, zone.name, 64);
        if (crowded.net_gbps > a.net_gbps || crowded.uplink_gbps > a.uplink_gbps)
          violations.record("extra flows increased a fair-share bandwidth");
      }
    }
  }

  // Lenient parsing: seeded garbage lines are skipped and counted without
  // disturbing one well-formed declaration.
  {
    std::string corrupted = text;
    const std::size_t garbage = 1 + rng.uniform_index(4);
    for (std::size_t i = 0; i < garbage; ++i) {
      switch (rng.uniform_index(3)) {
        case 0: corrupted += "router r" + std::to_string(i) + " gbps=1\n"; break;
        case 1: corrupted += "host\n"; break;
        default: corrupted += "link g" + std::to_string(i) + " gbps=fast\n"; break;
      }
    }
    platform::PlatformParseStats cstats;
    (void)platform::parse_platform(corrupted, &cstats);
    if (cstats.skipped() != garbage)
      violations.record("garbage lines were not all skipped-with-counter");
    if (cstats.hosts_parsed != stats.hosts_parsed || cstats.links_parsed != stats.links_parsed ||
        cstats.zones_parsed != stats.zones_parsed)
      violations.record("garbage lines disturbed well-formed declarations");
    digest.mix(static_cast<std::uint64_t>(cstats.skipped()));
  }

  // Flat anchor: the flat platform reproduces the catalog-only estimator
  // 0 ULP on every (app, type, zone) profile component.
  const char* names[] = {"BT", "SP", "LU", "FT", "IS"};
  const AppProfile app = paper_profile(names[rng.uniform_index(5)]);
  const platform::Platform flat = platform::Platform::flat(catalog);
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator flat_est(&flat);
  for (const InstanceType& type : catalog.types()) {
    for (const Zone& zone : catalog.zones()) {
      if (std::bit_cast<std::uint64_t>(legacy.hours(app, type)) !=
          std::bit_cast<std::uint64_t>(flat_est.hours(app, type, zone.name)))
        violations.record("flat platform drifted from the catalog estimator: hours");
      const CheckpointCosts a = legacy.checkpoint_costs(app, type);
      const CheckpointCosts b = flat_est.checkpoint_costs(app, type, zone.name);
      if (std::bit_cast<std::uint64_t>(a.checkpoint_h) !=
              std::bit_cast<std::uint64_t>(b.checkpoint_h) ||
          std::bit_cast<std::uint64_t>(a.recovery_h) !=
              std::bit_cast<std::uint64_t>(b.recovery_h))
        violations.record("flat platform drifted from the catalog estimator: checkpoint");
    }
  }

  // Collective composition: allreduce is exactly two bcasts, bit for bit.
  {
    const platform::NetworkModel net(&plat);
    const InstanceType& type = catalog.type(rng.uniform_index(catalog.types().size()));
    const Zone& zone = catalog.zones()[rng.uniform_index(catalog.zones().size())];
    const std::size_t bytes = 1 + rng.uniform_index(1 << 20);
    const int ranks = 1 + static_cast<int>(rng.uniform_index(64));
    const double bc = net.bcast_seconds(type, zone.name, bytes, ranks);
    if (std::bit_cast<std::uint64_t>(net.allreduce_seconds(type, zone.name, bytes, ranks)) !=
        std::bit_cast<std::uint64_t>(2.0 * bc))
      violations.record("allreduce is not exactly two bcasts");
    digest.mix(bc);
  }

  // The optimizer over the random platform is a pure function: repeated
  // solves and thread counts produce bit-identical plan fingerprints.
  {
    const ExecTimeEstimator estimator(&plat);
    const double deadline_h =
        OnDemandSelector(&catalog, &legacy).baseline(app).t_h * (2.0 + rng.uniform(0.0, 3.0));
    const Market market =
        generate_market(catalog, random_market_profile(catalog, rng), 1.0, 0.25, rng());
    OptimizerConfig config = tiny_optimizer_config();
    config.threads = 1;
    const SompiOptimizer serial(&catalog, &estimator, config);
    config.threads = 2;
    const SompiOptimizer pooled(&catalog, &estimator, config);
    const std::string fp = plan_fingerprint(serial.optimize(app, market, deadline_h));
    if (fp != plan_fingerprint(serial.optimize(app, market, deadline_h)))
      violations.record("same-platform re-solve changed the plan fingerprint");
    if (fp != plan_fingerprint(pooled.optimize(app, market, deadline_h)))
      violations.record("thread count changed the platform plan fingerprint");
    digest.mix(fp);
  }

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 8: the sharded serving tier vs its single-shard oracle.

ScenarioOutcome run_sharded_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "sharded";
  Violations violations;

  Rng rng(seed ^ 0x54A2DED5EEDULL);
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), 1.5, 0.25, rng());

  // A seeded tier shape from the acceptance set {1, 2, 4, 8}, with a seeded
  // ring salt — the equivalence contract must hold for EVERY one.
  const std::size_t shard_choices[] = {1, 2, 4, 8};
  const std::size_t shards = shard_choices[rng.uniform_index(4)];
  ShardedConfig config;
  config.shards = shards;
  config.vnodes = 16;
  config.salt = rng();
  config.service.cache.shards = 2;
  // Ample tier budget: with a 3-request pool the per-shard ceil split can
  // never evict a fitting key, so hit/solve classification stays comparable.
  config.service.cache.capacity = 32;
  config.service.max_concurrent_solves = 2;
  config.service.max_queued_solves = 16;  // roomy: this scenario never sheds
  config.service.latency_window = 32;
  config.service.opt = tiny_optimizer_config();

  ShardedConfig oracle_config = config;
  oracle_config.shards = 1;
  ShardedPlanService tier(&catalog, &estimator, market, config);
  ShardedPlanService oracle(&catalog, &estimator, market, oracle_config);

  const OnDemandSelector selector(&catalog, &estimator);
  std::vector<PlanRequest> pool;
  for (const char* name : {"BT", "SP", "FT"}) {
    PlanRequest r;
    r.app = paper_profile(name);
    r.deadline_h = selector.baseline(r.app).t_h * (1.2 + rng.uniform(0.0, 3.0));
    pool.push_back(std::move(r));
  }

  Digest digest;
  digest.mix(out.kind);
  digest.mix(shards);
  bool wiped = false;
  const std::size_t n_requests = 6 + rng.uniform_index(7);
  for (std::size_t i = 0; i < n_requests; ++i) {
    if (rng.bernoulli(0.25)) {
      // Identical updates through both fan-outs: the two deployments must
      // stay on one (epoch → market) timeline.
      const std::vector<PriceUpdate> updates{
          PriceUpdate{{0, 0}, {0.01 + rng.uniform(0.0, 0.05)}}};
      tier.fanout().ingest(updates);
      oracle.fanout().ingest(updates);
    }
    if (rng.bernoulli(0.15)) {
      // Chaos: a seeded shard loses its whole cache. Fingerprints must
      // survive; the one-solve economy is legitimately waived below.
      tier.shard(rng.uniform_index(tier.shard_count())).wipe_cache();
      wiped = true;
    }
    const PlanRequest& request = pool[rng.uniform_index(pool.size())];
    const PlanResponse got =
        rng.bernoulli(0.5)
            ? tier.serve_on(rng.uniform_index(tier.shard_count()), request)
            : tier.serve(request);
    const PlanResponse want = oracle.serve(request);
    digest.mix(std::string(outcome_label(got.outcome)));
    digest.mix(got.epoch);
    if (got.epoch != want.epoch)
      violations.record("tier and oracle answered at different epochs");
    if (got.plan == nullptr || want.plan == nullptr) {
      violations.record("roomy-queue scenario produced a shed");
      continue;
    }
    // The headline invariant: bit-identical to the single-shard oracle.
    if (plan_fingerprint(*got.plan) != plan_fingerprint(*want.plan)) {
      violations.record("tier plan is not fingerprint-identical to the 1-shard oracle");
      continue;
    }
    digest.mix(plan_fingerprint(*got.plan));
  }

  // Conservation: per-shard counters sum to the aggregate; the outcome
  // classes partition the requests; the ledger balances the solve economy.
  const ShardedStats stats = tier.stats();
  if (stats.total.requests != n_requests)
    violations.record("tier request counter lost a request");
  if (stats.total.hits + stats.total.solves + stats.total.dedup_joins + stats.total.sheds !=
      stats.total.requests)
    violations.record("tier outcome classes do not partition the requests");
  std::uint64_t sum_requests = 0;
  for (const ServiceStats& shard : stats.per_shard) sum_requests += shard.requests;
  if (sum_requests != stats.total.requests)
    violations.record("per-shard request counters do not sum to the aggregate");
  if (stats.routed + stats.sprayed != stats.total.requests)
    violations.record("front-door counters do not sum to the aggregate");
  if (!wiped && stats.duplicate_solves != 0)
    violations.record("duplicate solve without cache-wipe chaos");
  if (stats.total.solves != tier.distinct_solves() + stats.duplicate_solves)
    violations.record("solve ledger does not balance the solve counter");
  digest.mix(stats.total.hits);
  digest.mix(stats.total.solves);
  digest.mix(stats.duplicate_solves);
  digest.mix(stats.forwarded);

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 10: warm-start re-planning is invisible (DESIGN.md §14).
//
// One board under a random epoch-delta stream — dirty-group sets of random
// size, including empty forced bumps that move the epoch but no history —
// served by two warm services (optimizer threads 1 and 8) and checked
// against the cold solve() oracle in lockstep. Invariants:
//   * every served plan is fingerprint-identical to a cold solve of its
//     snapshot, at both thread counts (warm starts must be invisible);
//   * the first solve of a scope reuses nothing; a re-plan's table span
//     (reused + built) never changes (the candidate-set size is pinned by
//     the deadline filter); a CLEAN bump (no group history moved since the
//     scope's last solve) rebuilds zero tables;
//   * warm accounting (tables_reused / tables_built / warm_seeds) is
//     identical across thread counts — it is decided before the search;
//   * replan_count equals the independently tracked re-solve count.
// The digest mixes fingerprints, epochs, outcomes and the warm accounting —
// never prune counters, which are schedule-dependent.

ScenarioOutcome run_warmstart_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "warmstart";
  Violations violations;

  Rng rng(seed ^ 0x3A12B0075EEDULL);
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  MarketBoard board(generate_market(catalog, paper_market_profile(catalog), 1.5, 0.25, rng()));

  ServiceConfig config;
  config.cache.shards = 2;
  config.cache.capacity = 8;
  config.latency_window = 32;
  config.opt = tiny_optimizer_config();
  ServiceConfig config8 = config;
  config8.opt.threads = 8;
  PlanService warm1(&catalog, &estimator, &board, config);
  PlanService warm8(&catalog, &estimator, &board, config8);

  const OnDemandSelector selector(&catalog, &estimator);
  std::vector<PlanRequest> pool;
  for (const char* name : {"BT", "SP"}) {
    PlanRequest r;
    r.app = paper_profile(name);
    r.deadline_h = selector.baseline(r.app).t_h * (1.2 + rng.uniform(0.0, 3.0));
    if (rng.bernoulli(0.4)) {
      // Constrained scopes route through the service's own candidate loop —
      // the warm path must be invisible there too.
      const auto& types = catalog.types();
      r.allowed_types = {types[rng.uniform_index(types.size())].name,
                         types[rng.uniform_index(types.size())].name};
    }
    pool.push_back(std::move(r));
  }

  struct ScopeState {
    std::string key;
    bool solved = false;
    bool dirty = false;   ///< some group history moved since the last solve
    std::size_t span = 0; ///< tables_reused + tables_built of the first solve
  };
  std::vector<ScopeState> scopes;
  const auto scope_state = [&](const std::string& key) -> ScopeState& {
    for (ScopeState& s : scopes)
      if (s.key == key) return s;
    scopes.push_back(ScopeState{key, false, false, 0});
    return scopes.back();
  };

  Digest digest;
  digest.mix(out.kind);
  std::uint64_t expected_replans = 0;
  const std::size_t n_rounds = 3 + rng.uniform_index(2);
  for (std::size_t round = 0; round < n_rounds; ++round) {
    if (round > 0) {
      std::vector<PriceUpdate> updates;
      for (const CircleGroupSpec& spec : catalog.all_groups()) {
        if (!rng.bernoulli(0.2)) continue;
        std::vector<double> prices;
        const std::size_t n = 1 + rng.uniform_index(2);
        for (std::size_t s = 0; s < n; ++s) prices.push_back(0.02 + rng.uniform(0.0, 1.5));
        updates.push_back(PriceUpdate{spec, std::move(prices)});
      }
      // Empty = forced invalidation: the epoch bumps, the versions stay put.
      board.ingest(updates);
      if (!updates.empty())
        for (ScopeState& s : scopes) s.dirty = true;
    }
    for (const PlanRequest& request : pool) {
      const MarketSnapshot snap = board.snapshot();
      const PlanResponse r1 = warm1.serve(request);
      const PlanResponse r8 = warm8.serve(request);
      digest.mix(std::string(outcome_label(r1.outcome)));
      digest.mix(r1.epoch);
      if (r1.outcome != r8.outcome)
        violations.record("thread-count twins took different serve outcomes");
      if (r1.plan == nullptr || r8.plan == nullptr) {
        violations.record("warm service shed an uncontended request");
        continue;
      }
      const Plan fresh = warm1.solve(canonicalized(request), *snap.market);
      const std::string fp = plan_fingerprint(*r1.plan);
      if (fp != plan_fingerprint(fresh))
        violations.record("warm plan (threads=1) is not fingerprint-identical to a cold solve");
      if (fp != plan_fingerprint(*r8.plan))
        violations.record("warm plan (threads=8) diverged from the threads=1 plan");
      digest.mix(fp);
      if (r1.outcome != PlanOutcome::kSolved) continue;

      ScopeState& st = scope_state(canonical_key(canonicalized(request)));
      const PlanStats& ws1 = r1.plan->stats;
      if (ws1.tables_reused != r8.plan->stats.tables_reused ||
          ws1.tables_built != r8.plan->stats.tables_built ||
          ws1.warm_seeds != r8.plan->stats.warm_seeds)
        violations.record("warm accounting diverged across thread counts");
      const std::size_t span = ws1.tables_reused + ws1.tables_built;
      if (!st.solved) {
        st.span = span;
        if (ws1.tables_reused != 0)
          violations.record("first solve of a scope reused tables from nowhere");
      } else {
        ++expected_replans;
        if (span != st.span)
          violations.record("re-plan table span changed though the candidate set is pinned");
        if (!st.dirty && ws1.tables_built != 0)
          violations.record("clean epoch bump rebuilt a cost table");
      }
      st.solved = true;
      st.dirty = false;
      digest.mix(ws1.tables_reused);
      digest.mix(ws1.tables_built);
      digest.mix(ws1.warm_seeds);
    }
  }

  const ServiceStats stats = warm1.stats();
  if (stats.requests != stats.hits + stats.solves + stats.dedup_joins + stats.sheds)
    violations.record("warm service stats do not tally");
  if (stats.replan_count != expected_replans)
    violations.record("replan_count does not match the tracked re-solves");
  digest.mix(stats.solves);
  digest.mix(stats.replan_count);
  digest.mix(stats.replan_table_hits);
  digest.mix(stats.replan_table_misses);
  digest.mix(stats.warm_seeds);

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 11: the wire boundary is invisible (DESIGN.md §15).
//
// Three passes. (A) Codec hardening, pure and deterministic: every message
// type round-trips byte-identically through encode→frame→chunked decode (a
// decoded request re-canonicalizes to the IDENTICAL cache key; a decoded
// plan reproduces its fingerprint byte for byte), and each corruption class
// — flipped payload bit, flipped magic, truncation, splice, wrong version,
// wrong type, overlong declaration, malformed payload — is rejected with
// EXACTLY the expected class counter and never a crash. (B) A no-chaos
// end-to-end lockstep: a routed PlanClient drives a PlanServerLoop over a
// seeded {1,2,4,8}-shard tier (with mid-stream epoch bumps through both
// fan-outs) against the 1-shard in-process oracle — every wire-served plan
// must be fingerprint-identical, the forwarding counter must stay 0, and
// the server must report zero codec rejects. (C) A chaos pass (torn writes,
// drops, short reads from the seed's FaultPlan): async submissions must ALL
// complete exactly once — as a verified plan, an explicit shed, or an error
// — nothing hangs, nothing is silently dropped. Chaos outcomes are
// schedule-dependent, so pass C checks invariants only; the digest mixes
// exclusively the deterministic observables of passes A and B.

ScenarioOutcome run_wire_scenario(std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  out.kind = "wire";
  Violations violations;

  Rng rng(seed ^ 0x317E5EED5ULL);
  Digest digest;
  digest.mix(out.kind);

  // --- Pass A: codec round trips and corruption classes -------------------

  const auto feed_chunked = [&](net::FrameDecoder& decoder, std::string_view bytes,
                                std::vector<net::WireFrame>* frames) {
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t n = std::min<std::size_t>(bytes.size() - pos, 1 + rng.uniform_index(7));
      decoder.feed(bytes.substr(pos, n));
      pos += n;
      while (auto frame = decoder.next()) frames->push_back(std::move(*frame));
    }
  };

  const auto random_request = [&] {
    PlanRequest r;
    const char* names[] = {"BT", "SP", "FT"};
    r.app = paper_profile(names[rng.uniform_index(3)]);
    r.deadline_h = 5.0 + rng.uniform(0.0, 40.0);
    if (rng.bernoulli(0.5))
      r.allowed_types = {"zz.type", "aa.type", "aa.type"};  // unsorted, duped
    if (rng.bernoulli(0.3)) r.allowed_zones = {"zone-c", "zone-a"};
    return r;
  };

  const auto synth_plan = [&] {
    Plan p;
    p.app = "SYN";
    p.step_hours = rng.uniform(0.01, 0.5);
    p.deadline_h = rng.uniform(1.0, 50.0);
    p.state_gb = rng.uniform(0.1, 8.0);
    p.od.type_index = rng.uniform_index(8);
    p.od.t_h = rng.uniform(1.0, 20.0);
    p.od.instances = 1 + static_cast<int>(rng.uniform_index(16));
    p.od.rate_usd_h = rng.uniform(0.01, 3.0);
    p.od.feasible = rng.bernoulli(0.9);
    const std::size_t n_groups = rng.uniform_index(4);
    for (std::size_t g = 0; g < n_groups; ++g) {
      GroupPlan group;
      group.spec.type_index = rng.uniform_index(8);
      group.spec.zone_index = rng.uniform_index(4);
      group.name = "g" + std::to_string(g);
      group.instances = 1 + static_cast<int>(rng.uniform_index(8));
      group.t_steps = 1 + static_cast<int>(rng.uniform_index(200));
      group.o_steps = rng.uniform(0.0, 5.0);
      group.r_steps = rng.uniform(0.0, 5.0);
      group.bid_usd = rng.uniform(0.01, 2.0);
      group.f_steps = static_cast<int>(rng.uniform_index(50));
      group.ckpt_policy = rng.bernoulli(0.5) ? "s3" : "cache+partner";
      p.groups.push_back(std::move(group));
    }
    p.expected.cost_usd = rng.uniform(0.1, 100.0);
    p.expected.time_h = rng.uniform(0.1, 50.0);
    p.expected.spot_cost_usd = rng.uniform(0.0, 50.0);
    p.expected.od_cost_usd = rng.uniform(0.0, 50.0);
    p.expected.spot_time_h = rng.uniform(0.0, 50.0);
    p.expected.od_time_h = rng.uniform(0.0, 50.0);
    p.expected.p_complete_on_spot = rng.uniform(0.0, 1.0);
    p.expected.e_min_ratio = rng.uniform(0.0, 1.0);
    p.spot_feasible = rng.bernoulli(0.8);
    p.model_evaluations = rng.uniform_index(100000);
    return p;
  };

  // A1: message round trips (encode → decode → re-encode byte-identical).
  for (int round = 0; round < 3; ++round) {
    const PlanRequest request = random_request();
    const std::string payload = net::encode_plan_request(request);
    PlanRequest decoded;
    if (!net::decode_plan_request(payload, &decoded)) {
      violations.record("well-formed plan_request payload failed to decode");
    } else {
      if (net::encode_plan_request(decoded) != payload)
        violations.record("plan_request re-encode is not byte-identical");
      if (canonical_key(canonicalized(decoded)) != canonical_key(canonicalized(request)))
        violations.record("round-tripped request re-canonicalizes to a different cache key");
      digest.mix(canonical_key(canonicalized(decoded)));
    }

    PlanResponse response;
    response.outcome = rng.bernoulli(0.2) ? PlanOutcome::kShed : PlanOutcome::kSolved;
    response.epoch = rng();
    if (response.outcome != PlanOutcome::kShed)
      response.plan = std::make_shared<const Plan>(synth_plan());
    const std::string response_payload = net::encode_plan_response(response);
    PlanResponse response_decoded;
    if (!net::decode_plan_response(response_payload, &response_decoded)) {
      violations.record("well-formed plan_response payload failed to decode");
    } else {
      if (net::encode_plan_response(response_decoded) != response_payload)
        violations.record("plan_response re-encode is not byte-identical");
      if (response.plan != nullptr &&
          plan_fingerprint(*response_decoded.plan) != plan_fingerprint(*response.plan))
        violations.record("wire round trip changed the plan fingerprint");
      if (response.plan != nullptr) digest.mix(plan_fingerprint(*response_decoded.plan));
    }

    net::WireTierStats stats;
    stats.requests = rng();
    stats.forwarded = rng();
    stats.frames_rejected = rng();
    net::WireTierStats stats_decoded;
    if (!net::decode_stats_response(net::encode_stats_response(stats), &stats_decoded) ||
        !(stats_decoded == stats))
      violations.record("stats_response does not round-trip");

    std::string message;
    if (!net::decode_error_response(
            net::encode_error_response("bad \"quote\" \\ and\nnewline"), &message) ||
        message != "bad \"quote\" \\ and\nnewline")
      violations.record("error_response does not round-trip");
  }

  // A2: clean frames through seeded chunk splits — zero rejects.
  {
    net::FrameDecoder decoder;
    std::vector<net::WireFrame> frames;
    std::string stream;
    const std::size_t n_frames = 2 + rng.uniform_index(4);
    for (std::size_t i = 0; i < n_frames; ++i)
      stream += net::encode_frame(net::MsgType::kPlanRequest, 100 + i,
                                  net::encode_plan_request(random_request()));
    feed_chunked(decoder, stream, &frames);
    decoder.finish();
    if (frames.size() != n_frames)
      violations.record("clean frame stream did not decode every frame");
    if (decoder.stats().rejects() != 0)
      violations.record("clean frame stream produced a reject");
    for (std::size_t i = 0; i < frames.size(); ++i)
      if (frames[i].request_id != 100 + i)
        violations.record("clean frame stream reordered or relabeled a frame");
    digest.mix(static_cast<std::uint64_t>(frames.size()));
  }

  // A3: one corruption per fresh decoder → exactly one class counter.
  const std::string victim = net::encode_frame(net::MsgType::kPlanRequest, 7,
                                               net::encode_plan_request(random_request()));
  const auto run_decoder = [&](std::string_view bytes, net::WireCodecStats* stats_out) {
    net::FrameDecoder decoder;
    std::vector<net::WireFrame> frames;
    feed_chunked(decoder, bytes, &frames);
    decoder.finish();
    *stats_out = decoder.stats();
    return frames;
  };

  {  // flipped bit at or after the payload start → crc_mismatch, only
    std::string corrupt = victim;
    const std::size_t at =
        net::kWireHeaderBytes + rng.uniform_index(corrupt.size() - net::kWireHeaderBytes);
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.uniform_index(8)));
    net::WireCodecStats stats;
    const auto frames = run_decoder(corrupt, &stats);
    if (!frames.empty() || stats.crc_mismatch != 1 || stats.rejects() != 1)
      violations.record("payload bit flip was not rejected as exactly one crc_mismatch");
    digest.mix(stats.crc_mismatch);
  }
  {  // flipped bit in the magic → bad_magic, nothing decodes
    std::string corrupt = victim;
    const std::size_t at = rng.uniform_index(4);
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.uniform_index(8)));
    net::WireCodecStats stats;
    const auto frames = run_decoder(corrupt, &stats);
    if (!frames.empty() || stats.bad_magic < 1)
      violations.record("magic bit flip decoded or did not count bad_magic");
  }
  {  // truncation → exactly one short_frame at finish()
    const std::size_t keep = 1 + rng.uniform_index(victim.size() - 1);
    net::WireCodecStats stats;
    const auto frames = run_decoder(std::string_view(victim).substr(0, keep), &stats);
    if (!frames.empty() || stats.short_frame != 1 || stats.rejects() != 1)
      violations.record("truncated frame was not rejected as exactly one short_frame");
    digest.mix(stats.short_frame);
  }
  {  // splice: a torn 1–3 byte prefix then a whole frame → one bad_magic,
     // and the whole frame still decodes (a bad frame fails the REQUEST,
     // never the connection)
    const std::string spliced =
        victim.substr(0, 1 + rng.uniform_index(3)) + victim;
    net::WireCodecStats stats;
    const auto frames = run_decoder(spliced, &stats);
    if (frames.size() != 1 || stats.bad_magic != 1 || stats.rejects() != 1)
      violations.record("spliced stream did not resync to exactly the intact frame");
    else if (frames[0].request_id != 7)
      violations.record("resynced frame lost its request id");
  }
  {  // unknown version (CRC valid) → exactly one unknown_version
    const std::string frame = net::encode_frame_raw(
        static_cast<std::uint16_t>(2 + rng.uniform_index(1000)), 1, 9, "payload");
    net::WireCodecStats stats;
    const auto frames = run_decoder(frame, &stats);
    if (!frames.empty() || stats.unknown_version != 1 || stats.rejects() != 1)
      violations.record("future-version frame was not rejected as exactly unknown_version");
  }
  {  // unknown type (CRC valid) → exactly one unknown_type
    const std::uint16_t bad_type =
        rng.bernoulli(0.5) ? 0 : static_cast<std::uint16_t>(6 + rng.uniform_index(1000));
    const std::string frame = net::encode_frame_raw(net::kWireVersion, bad_type, 9, "payload");
    net::WireCodecStats stats;
    const auto frames = run_decoder(frame, &stats);
    if (!frames.empty() || stats.unknown_type != 1 || stats.rejects() != 1)
      violations.record("unknown-type frame was not rejected as exactly unknown_type");
  }
  {  // declared payload over the decoder's cap → exactly one overlong_frame
    net::FrameDecoder decoder(net::FrameDecoder::Config{64});
    const std::string big(65 + rng.uniform_index(100), '\0');
    decoder.feed(net::encode_frame(net::MsgType::kPlanRequest, 9, big));
    while (decoder.next().has_value())
      violations.record("overlong frame decoded");
    decoder.finish();
    if (decoder.stats().overlong_frame != 1 || decoder.stats().rejects() != 1)
      violations.record("overlong frame was not rejected as exactly one overlong_frame");
  }
  {  // CRC-valid frame whose payload fails its message parse → bad_payload
    std::string payload = net::encode_plan_request(random_request());
    payload.pop_back();  // guaranteed-malformed: truncated inside a field
    net::FrameDecoder decoder;
    std::vector<net::WireFrame> frames;
    feed_chunked(decoder, net::encode_frame(net::MsgType::kPlanRequest, 11, payload), &frames);
    decoder.finish();
    if (frames.size() != 1) {
      violations.record("framed malformed payload did not reach the payload parser");
    } else {
      PlanRequest ignored;
      if (net::decode_plan_request(frames[0].payload, &ignored))
        violations.record("truncated plan_request payload decoded");
      decoder.note_bad_payload();
      if (decoder.stats().bad_payload != 1 || decoder.stats().rejects() != 1)
        violations.record("bad payload was not counted as exactly one bad_payload");
    }
  }

  // --- Pass B: no-chaos end-to-end lockstep against the in-process oracle --

  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), 1.5, 0.25, rng());

  const std::size_t shard_choices[] = {1, 2, 4, 8};
  ShardedConfig config;
  config.shards = shard_choices[rng.uniform_index(4)];
  config.vnodes = 16;
  config.salt = rng();
  config.service.cache.shards = 2;
  config.service.cache.capacity = 32;
  config.service.max_concurrent_solves = 2;
  config.service.max_queued_solves = 16;
  config.service.latency_window = 32;
  config.service.opt = tiny_optimizer_config();
  ShardedConfig oracle_config = config;
  oracle_config.shards = 1;

  const OnDemandSelector selector(&catalog, &estimator);
  std::vector<PlanRequest> pool;
  for (const char* name : {"BT", "SP", "FT"}) {
    PlanRequest r;
    r.app = paper_profile(name);
    r.deadline_h = selector.baseline(r.app).t_h * (1.2 + rng.uniform(0.0, 3.0));
    pool.push_back(std::move(r));
  }

  {
    ShardedPlanService tier(&catalog, &estimator, market, config);
    ShardedPlanService oracle(&catalog, &estimator, market, oracle_config);
    net::ServerConfig server_config;
    server_config.workers = 2;
    server_config.max_in_flight = 64;
    net::PlanServerLoop server(&tier, server_config);
    net::PlanClient client(&server, net::ClientMode::kRouted);

    const std::size_t n_requests = 5 + rng.uniform_index(5);
    for (std::size_t i = 0; i < n_requests; ++i) {
      if (rng.bernoulli(0.25)) {
        const std::vector<PriceUpdate> updates{
            PriceUpdate{{0, 0}, {0.01 + rng.uniform(0.0, 0.05)}}};
        tier.fanout().ingest(updates);
        oracle.fanout().ingest(updates);
      }
      const PlanRequest& request = pool[rng.uniform_index(pool.size())];
      try {
        const PlanResponse got = client.plan(request);
        const PlanResponse want = oracle.serve(request);
        digest.mix(std::string(outcome_label(got.outcome)));
        digest.mix(got.epoch);
        if (got.epoch != want.epoch)
          violations.record("wire tier and oracle answered at different epochs");
        if (got.plan == nullptr || want.plan == nullptr) {
          violations.record("roomy no-chaos wire scenario produced a shed");
          continue;
        }
        if (plan_fingerprint(*got.plan) != plan_fingerprint(*want.plan)) {
          violations.record("wire-served plan is not fingerprint-identical to the oracle");
          continue;
        }
        digest.mix(plan_fingerprint(*got.plan));
      } catch (const std::exception& e) {
        violations.record(std::string("no-chaos wire request failed: ") + e.what());
      }
    }

    const ShardedStats tier_stats = tier.stats();
    if (tier_stats.forwarded != 0)
      violations.record("router-aware client paid a cross-shard forward without chaos");
    if (tier_stats.sprayed != n_requests)
      violations.record("wire requests did not all enter via their landing shard");
    if (tier_stats.duplicate_solves != 0)
      violations.record("wire serving produced a duplicate solve without chaos");
    try {
      const net::WireTierStats wire_stats = client.server_stats();
      if (wire_stats.frames_rejected != 0)
        violations.record("server rejected a frame on a clean transport");
      if (wire_stats.wire_errors != 0)
        violations.record("server sent an error frame on a clean request stream");
      if (wire_stats.wire_sheds != 0)
        violations.record("server shed within a roomy in-flight budget");
      if (wire_stats.requests != n_requests)
        violations.record("tier request count over the wire lost a request");
      digest.mix(wire_stats.hits);
      digest.mix(wire_stats.solves);
      digest.mix(wire_stats.forwarded);
      digest.mix(wire_stats.epoch);
    } catch (const std::exception& e) {
      violations.record(std::string("stats round trip failed: ") + e.what());
    }
  }

  // --- Pass C: chaos — completeness only, nothing digested ----------------

  {
    ShardedPlanService tier(&catalog, &estimator, market, config);
    ShardedPlanService oracle(&catalog, &estimator, market, oracle_config);
    std::vector<std::string> reference;
    for (const PlanRequest& request : pool) {
      const PlanResponse want = oracle.serve(request);
      reference.push_back(want.plan == nullptr ? std::string() : plan_fingerprint(*want.plan));
    }

    FaultInjector faults{FaultPlan::from_seed(seed ^ 0x3172EC4A05ULL)};
    net::ServerConfig server_config;
    server_config.workers = 2;
    server_config.max_in_flight = 2 + rng.uniform_index(8);
    server_config.faults = &faults;
    net::PlanServerLoop server(&tier, server_config);
    net::PlanClient client(&server, net::ClientMode::kRouted);

    std::vector<std::size_t> picks;
    std::vector<std::uint64_t> ids;
    const std::size_t n_chaos = 4 + rng.uniform_index(5);
    for (std::size_t i = 0; i < n_chaos; ++i) {
      const std::size_t pick = rng.uniform_index(pool.size());
      picks.push_back(pick);
      ids.push_back(client.submit(pool[pick]));
    }
    client.drain();
    const std::vector<net::ClientCompletion> completions = client.harvest();
    if (completions.size() != n_chaos)
      violations.record("chaos run lost or duplicated a completion");
    std::set<std::uint64_t> seen;
    for (const net::ClientCompletion& completion : completions) {
      if (!seen.insert(completion.request_id).second)
        violations.record("chaos run delivered a request id twice");
      const auto at = std::find(ids.begin(), ids.end(), completion.request_id);
      if (at == ids.end()) {
        violations.record("chaos run delivered an unknown request id");
        continue;
      }
      if (!completion.error.empty()) continue;  // chaos may fail any request
      if (completion.response.plan == nullptr) {
        if (completion.response.outcome != PlanOutcome::kShed)
          violations.record("planless response was not an explicit shed");
        continue;
      }
      const std::size_t pick = picks[static_cast<std::size_t>(at - ids.begin())];
      if (plan_fingerprint(*completion.response.plan) != reference[pick])
        violations.record("chaos-surviving plan diverged from the in-process oracle");
    }
  }

  out.digest = digest.value();
  out.failed = violations.any();
  out.detail = violations.first();
  return out;
}

}  // namespace

const char* scenario_kind_name(std::uint64_t seed) {
  switch (seed % 11) {
    case 0: return "checkpoint";
    case 1: return "incremental";
    case 2: return "replay";
    case 3: return "service";
    case 4: return "plan";
    case 5: return "feed";
    case 6: return "multilevel";
    case 7: return "platform";
    case 8: return "sharded";
    case 9: return "warmstart";
    default: return "wire";
  }
}

ScenarioOutcome run_scenario(std::uint64_t seed) {
  switch (seed % 11) {
    case 0: return run_checkpoint_scenario(seed, /*incremental=*/false);
    case 1: return run_checkpoint_scenario(seed, /*incremental=*/true);
    case 2: return run_replay_scenario(seed);
    case 3: return run_service_scenario(seed);
    case 4: return run_plan_scenario(seed);
    case 5: return run_feed_scenario(seed);
    case 6: return run_multilevel_scenario(seed);
    case 7: return run_platform_scenario(seed);
    case 8: return run_sharded_scenario(seed);
    case 9: return run_warmstart_scenario(seed);
    default: return run_wire_scenario(seed);
  }
}

}  // namespace sompi::fi
