#include "cloud/catalog.h"

namespace sompi {

Catalog::Catalog(std::vector<InstanceType> types, std::vector<Zone> zones)
    : types_(std::move(types)), zones_(std::move(zones)) {
  SOMPI_REQUIRE(!types_.empty());
  SOMPI_REQUIRE(!zones_.empty());
  for (const auto& t : types_) {
    SOMPI_REQUIRE_MSG(t.cores >= 1, "instance type needs at least one core: " + t.name);
    SOMPI_REQUIRE_MSG(t.ondemand_usd_h > 0.0, "on-demand price must be positive: " + t.name);
    SOMPI_REQUIRE_MSG(t.gips_per_core > 0.0 && t.net_gbps > 0.0 && t.io_mbps > 0.0,
                      "capabilities must be positive: " + t.name);
  }
}

const InstanceType& Catalog::type(std::size_t index) const {
  SOMPI_REQUIRE(index < types_.size());
  return types_[index];
}

const Zone& Catalog::zone(std::size_t index) const {
  SOMPI_REQUIRE(index < zones_.size());
  return zones_[index];
}

std::size_t Catalog::type_index(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return i;
  throw PreconditionError("unknown instance type: " + name);
}

std::size_t Catalog::zone_index(const std::string& name) const {
  for (std::size_t i = 0; i < zones_.size(); ++i)
    if (zones_[i].name == name) return i;
  throw PreconditionError("unknown zone: " + name);
}

int Catalog::instances_for(std::size_t type_idx, int processes) const {
  SOMPI_REQUIRE(processes >= 1);
  const int cores = type(type_idx).cores;
  return (processes + cores - 1) / cores;
}

std::string Catalog::group_name(const CircleGroupSpec& g) const {
  return type(g.type_index).name + "@" + zone(g.zone_index).name;
}

std::vector<CircleGroupSpec> Catalog::all_groups() const {
  std::vector<CircleGroupSpec> groups;
  groups.reserve(types_.size() * zones_.size());
  for (std::size_t t = 0; t < types_.size(); ++t)
    for (std::size_t z = 0; z < zones_.size(); ++z) groups.push_back({t, z});
  return groups;
}

Catalog paper_catalog() {
  // Capabilities calibrated so that the paper's qualitative orderings hold
  // (§5.3): per-core speed cc2.8xlarge > c3.xlarge > m1.medium > m1.small;
  // spot cost per unit of compute m1.small < m1.medium < c3.xlarge <
  // cc2.8xlarge; cc2.8xlarge's 10GbE + 32 cores/instance make it the clear
  // winner for communication-bound codes; the m1 family's high instance
  // count gives it the most aggregate I/O parallelism. On-demand prices are
  // Amazon's 2014 us-east Linux figures.
  std::vector<InstanceType> types = {
      // name        cores gips/core  net  lat_us  io    $/h    spot_disc
      {"m1.small", 1, 2.8, 0.10, 350.0, 40.0, 0.044, 0.15},
      {"m1.medium", 1, 2.9, 0.15, 300.0, 50.0, 0.087, 0.11},
      {"m1.large", 2, 2.85, 0.25, 250.0, 60.0, 0.175, 0.13},
      {"c3.xlarge", 4, 3.3, 0.55, 150.0, 80.0, 0.210, 0.25},
      {"cc2.8xlarge", 32, 3.6, 10.0, 60.0, 200.0, 2.000, 0.28},
  };
  std::vector<Zone> zones = {{"us-east-1a"}, {"us-east-1b"}, {"us-east-1c"}};
  return Catalog(std::move(types), std::move(zones));
}

}  // namespace sompi
