#include "cloud/billing.h"

#include <cmath>

namespace sompi {

double billed_cost(BillingModel model, double usd_per_hour, double hours, int instances,
                   bool provider_killed) {
  SOMPI_REQUIRE(usd_per_hour >= 0.0);
  SOMPI_REQUIRE(hours >= 0.0);
  SOMPI_REQUIRE(instances >= 0);
  switch (model) {
    case BillingModel::kProportional:
      return usd_per_hour * hours * instances;
    case BillingModel::kHourlyRoundUp:
      return usd_per_hour * std::ceil(hours) * instances;
    case BillingModel::kHourlyProviderKillFree: {
      // Full hours are billed; a partial final hour is free only when the
      // provider killed the instance.
      const double full_hours = provider_killed ? std::floor(hours) : std::ceil(hours);
      return usd_per_hour * full_hours * instances;
    }
  }
  throw PreconditionError("unknown billing model");
}

}  // namespace sompi
