// Billing models.
//
// The paper's cost formulas are proportional in time (price × hours), so
// proportional billing is the default. 2014-era Amazon actually billed whole
// instance-hours (and refunded the last partial hour of an out-of-bid kill);
// we provide that model too so the replay simulator can quantify the gap.
#pragma once

#include "common/error.h"

namespace sompi {

enum class BillingModel {
  /// cost = price × hours, exactly (the paper's model).
  kProportional,
  /// cost = price × ceil(hours): whole-hour billing, user-terminated.
  kHourlyRoundUp,
  /// Whole-hour billing where the final partial hour is free because the
  /// provider terminated the instance (out-of-bid kill).
  kHourlyProviderKillFree,
};

/// Cost in USD of running `instances` machines for `hours` at `usd_per_hour`,
/// under the given billing model. `provider_killed` marks an out-of-bid
/// termination (only meaningful for kHourlyProviderKillFree).
double billed_cost(BillingModel model, double usd_per_hour, double hours, int instances,
                   bool provider_killed = false);

}  // namespace sompi
