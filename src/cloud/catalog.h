// EC2-style instance catalog.
//
// The paper (SC'15) evaluates on four instance types — m1.small, m1.medium,
// c3.xlarge and cc2.8xlarge — across the us-east-1a/1b/1c availability
// zones (plus m1.large in the Figure 1 trace study). We reproduce that
// catalog with capability/price figures matching Amazon's published 2014
// values, which is all the optimizer ever sees about "hardware".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"

namespace sompi {

/// One EC2 instance type: capability model + on-demand price.
struct InstanceType {
  std::string name;
  /// Physical cores; one MPI process is pinned per core (paper assumption).
  int cores = 1;
  /// Aggregate compute throughput per core, in giga-instructions per second.
  /// Derived from EC2 Compute Units (1 ECU ≈ 1.2 gips in our calibration).
  double gips_per_core = 1.0;
  /// Network bandwidth per instance, Gbit/s.
  double net_gbps = 1.0;
  /// One-way small-message latency between instances, microseconds.
  double net_latency_us = 200.0;
  /// Local/EBS I/O bandwidth per instance, MB/s.
  double io_mbps = 50.0;
  /// On-demand price, USD per instance-hour (us-east, Linux, 2014).
  double ondemand_usd_h = 0.0;
  /// Typical CALM-regime spot price as a fraction of the on-demand price.
  /// Old-generation types idled at deeper discounts in 2014.
  double spot_discount = 0.35;

  /// Effective compute throughput of the whole instance, gips.
  double gips() const { return gips_per_core * cores; }
};

/// An availability zone. Spot prices in different zones are independent
/// (paper assumption, §3.1.2).
struct Zone {
  std::string name;
};

/// A circle group: spot instances of one type in one zone (paper §3.1.1).
/// The group runs one full replica of the MPI application.
struct CircleGroupSpec {
  std::size_t type_index = 0;  ///< into Catalog::types()
  std::size_t zone_index = 0;  ///< into Catalog::zones()

  bool operator==(const CircleGroupSpec&) const = default;
};

/// The instance/zone universe for an experiment.
class Catalog {
 public:
  Catalog(std::vector<InstanceType> types, std::vector<Zone> zones);

  const std::vector<InstanceType>& types() const { return types_; }
  const std::vector<Zone>& zones() const { return zones_; }

  const InstanceType& type(std::size_t index) const;
  const Zone& zone(std::size_t index) const;

  /// Index of a type by name; throws when absent.
  std::size_t type_index(const std::string& name) const;
  /// Index of a zone by name; throws when absent.
  std::size_t zone_index(const std::string& name) const;

  /// Instances needed to host `processes` MPI ranks, one rank per core
  /// (paper: M_j = ceil(N / cores)).
  int instances_for(std::size_t type_index, int processes) const;

  /// Human-readable name "type@zone" for a circle group.
  std::string group_name(const CircleGroupSpec& g) const;

  /// All type × zone combinations, the candidate circle-group universe.
  std::vector<CircleGroupSpec> all_groups() const;

 private:
  std::vector<InstanceType> types_;
  std::vector<Zone> zones_;
};

/// The paper's evaluation catalog: m1.small, m1.medium, m1.large, c3.xlarge,
/// cc2.8xlarge across us-east-1a/1b/1c, with 2014 on-demand prices.
Catalog paper_catalog();

}  // namespace sompi
