// sompi_plan — command-line planning tool over the library's public API.
//
//   $ ./sompi_plan <app> [--deadline-factor F] [--tight] [--days D]
//                  [--seed S] [--k K] [--runs N]
//
//   app: BT SP LU FT IS BTIO LAMMPS32 LAMMPS128
//
// Prints the optimized plan, the model expectation, and a Monte-Carlo
// replay evaluation against the synthetic market.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "sim/monte_carlo.h"

using namespace sompi;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sompi_plan <BT|SP|LU|FT|IS|BTIO|LAMMPS32|LAMMPS128>\n"
               "                  [--deadline-factor F=1.5] [--tight]\n"
               "                  [--days D=14] [--seed S=42] [--k K=4] [--runs N=30]\n");
  std::exit(2);
}

AppProfile resolve_app(const std::string& name) {
  if (name == "LAMMPS32") return lammps_profile(32);
  if (name == "LAMMPS128") return lammps_profile(128);
  return paper_profile(name);  // throws with a clear message when unknown
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  double deadline_factor = 1.5;
  double days = 14.0;
  std::uint64_t seed = 42;
  int k = 4;
  std::size_t runs = 30;

  const std::string app_name = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--deadline-factor") {
      deadline_factor = std::atof(next());
    } else if (arg == "--tight") {
      deadline_factor = 1.05;
    } else if (arg == "--days") {
      days = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--runs") {
      runs = static_cast<std::size_t>(std::atoll(next()));
    } else {
      usage();
    }
  }

  try {
    const AppProfile app = resolve_app(app_name);
    const Catalog catalog = paper_catalog();
    const Market market =
        generate_market(catalog, paper_market_profile(catalog), days, 0.25, seed);
    const ExecTimeEstimator estimator;

    const OnDemandSelector selector(&catalog, &estimator);
    const OnDemandChoice baseline = selector.baseline(app);
    const double deadline_h = baseline.t_h * deadline_factor;

    OptimizerConfig cfg;
    cfg.max_groups = k;
    const SompiOptimizer optimizer(&catalog, &estimator, cfg);
    const Plan plan = optimizer.optimize(app, market, deadline_h);

    std::printf("workload   : %s (%d processes, %s)\n", app.name.c_str(), app.processes,
                category_label(app.category).c_str());
    std::printf("baseline   : %s × %d — %.1f h, $%.2f\n",
                catalog.type(baseline.type_index).name.c_str(), baseline.instances,
                baseline.t_h, baseline.full_cost_usd());
    std::printf("deadline   : %.1f h (%.2f× baseline)\n\n", deadline_h, deadline_factor);

    if (!plan.uses_spot()) {
      std::printf("plan: on-demand only (%s × %d) — the spot market cannot beat it under "
                  "this deadline.\n",
                  catalog.type(plan.od.type_index).name.c_str(), plan.od.instances);
    } else {
      Table t("plan");
      t.header({"circle group", "instances", "bid $/h", "checkpoint every", "run time"});
      for (const auto& g : plan.groups)
        t.row({g.name, std::to_string(g.instances), Table::num(g.bid_usd, 4),
               Table::num(g.f_steps * plan.step_hours, 2) + " h",
               Table::num(g.t_steps * plan.step_hours, 1) + " h"});
      std::printf("%s", t.render().c_str());
      std::printf("fallback   : %s × %d on demand\n",
                  catalog.type(plan.od.type_index).name.c_str(), plan.od.instances);
    }
    std::printf("expected   : $%.2f in %.1f h (P[spot completion] %.2f)\n",
                plan.expected.cost_usd, plan.expected.time_h,
                plan.expected.p_complete_on_spot);
    std::printf("optimizer  : %zu evaluations, %.2f s\n\n", plan.model_evaluations,
                plan.optimize_seconds);

    MonteCarloConfig mc;
    mc.runs = runs;
    mc.reserve_h = 96.0;
    const MonteCarloRunner runner(&market, {}, mc);
    const MonteCarloStats stats = runner.run_plan(plan, deadline_h);
    std::printf("replay(%zu) : $%.2f ± %.2f, %.1f h mean, %.0f%% deadline misses\n",
                stats.runs, stats.cost.mean, stats.cost.stddev, stats.time.mean,
                100.0 * stats.deadline_miss_rate);
    std::printf("savings    : %.0f%% vs baseline on-demand\n",
                100.0 * (1.0 - stats.cost.mean / baseline.full_cost_usd()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
