// Spot-market explorer: inspect a synthetic market the way §2.1 of the
// paper studies the real one — price series character per (type, zone),
// short-horizon distribution stability, and the failure-rate function a
// bidder faces.
//
//   $ ./spot_market_explorer [days] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/failure_model.h"
#include "trace/market.h"

using namespace sompi;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 14.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), days, 0.25, seed);

  // --- Market overview: every circle group's character. ---
  Table overview("Market overview (" + Table::num(days, 0) + " days, seed " +
                 std::to_string(seed) + ")");
  overview.header({"group", "od $/h", "min", "mean", "max", "avail@od", "avail@2×base"});
  for (const auto& g : catalog.all_groups()) {
    const SpotTrace& trace = market.trace(g);
    const InstanceType& type = catalog.type(g.type_index);
    double mean = 0.0;
    for (std::size_t i = 0; i < trace.steps(); ++i) mean += trace.price(i);
    mean /= static_cast<double>(trace.steps());
    overview.row({catalog.group_name(g), Table::num(type.ondemand_usd_h, 3),
                  Table::num(trace.min_price(), 4), Table::num(mean, 4),
                  Table::num(trace.max_price(), 2),
                  Table::num(100.0 * trace.availability(type.ondemand_usd_h), 1) + "%",
                  Table::num(100.0 * trace.availability(2.0 * base_spot_price(type)), 1) + "%"});
  }
  std::printf("%s\n", overview.render().c_str());

  // --- Price histogram of the spikiest group (ASCII art). ---
  const CircleGroupSpec spiky{catalog.type_index("m1.medium"), catalog.zone_index("us-east-1a")};
  const SpotTrace& trace = market.trace(spiky);
  std::printf("m1.medium@us-east-1a price histogram (calm band, spike tail clamps into the "
              "last bin):\n%s\n",
              trace.histogram(0.0, 4.0 * base_spot_price(catalog.type(spiky.type_index)), 12)
                  .ascii(46)
                  .c_str());

  // --- What a bidder faces: the failure-rate function. ---
  FailureEstimationConfig cfg;
  cfg.samples = 10000;
  cfg.horizon_steps = 96;
  const auto bids = logarithmic_bid_grid(trace.max_price(), 7);
  const FailureModel fm(trace, bids, cfg);
  Table bid_table("Bid levels for m1.medium@us-east-1a (24 h horizon)");
  bid_table.header({"bid $/h", "expected price", "P[survive 12h]", "P[survive 24h]", "MTBF h"});
  for (std::size_t b = 0; b < fm.bid_count(); ++b)
    bid_table.row({Table::num(fm.bid(b), 4), Table::num(fm.expected_price(b), 4),
                   Table::num(fm.survival(b, 48), 3), Table::num(fm.survival(b, 96), 3),
                   Table::num(fm.mtbf(b) * 0.25, 1)});
  std::printf("%s", bid_table.render().c_str());
  return 0;
}
