// Quickstart: optimize one MPI workload for the Amazon spot market and see
// what the plan looks like and what it actually costs in a trace replay.
//
//   $ ./quickstart
//
// Walks the full public API surface: catalog → market → profile →
// optimizer → plan → replay.
#include <cstdio>

#include "common/table.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "sim/replay.h"

using namespace sompi;

int main() {
  // 1. The cloud: the paper's EC2 catalog and a synthetic spot market with
  //    two weeks of price history.
  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/14.0,
                      /*step_hours=*/0.25, /*seed=*/42);

  // 2. The application: NPB BT at 128 processes (profile: instructions,
  //    traffic, I/O, checkpoint state).
  const AppProfile app = paper_profile("BT");
  const ExecTimeEstimator estimator;

  // 3. The deadline: 1.5× the fastest on-demand runtime (the paper's
  //    "loose" requirement).
  const OnDemandSelector od_selector(&catalog, &estimator);
  const OnDemandChoice baseline = od_selector.baseline(app);
  const double deadline_h = baseline.t_h * 1.5;
  std::printf("Baseline: %s × %d @ $%.3f/h → %.1f h, $%.2f\n",
              catalog.type(baseline.type_index).name.c_str(), baseline.instances,
              catalog.type(baseline.type_index).ondemand_usd_h, baseline.t_h,
              baseline.full_cost_usd());
  std::printf("Deadline: %.1f h\n\n", deadline_h);

  // 4. Optimize: bid prices, checkpoint intervals and the circle-group set
  //    minimizing the expected cost under the deadline.
  const SompiOptimizer optimizer(&catalog, &estimator, OptimizerConfig{});
  const Plan plan = optimizer.optimize(app, market, deadline_h);

  Table t("SOMPI plan for " + plan.app);
  t.header({"circle group", "instances", "bid $/h", "ckpt every", "productive"});
  for (const auto& g : plan.groups)
    t.row({g.name, std::to_string(g.instances), Table::num(g.bid_usd, 4),
           Table::num(g.f_steps * plan.step_hours, 2) + " h",
           Table::num(g.t_steps * plan.step_hours, 1) + " h"});
  std::printf("%s", t.render().c_str());
  std::printf("on-demand fallback: %s × %d\n",
              catalog.type(plan.od.type_index).name.c_str(), plan.od.instances);
  std::printf("model expectation: $%.2f in %.1f h (P[finish on spot] = %.2f)\n",
              plan.expected.cost_usd, plan.expected.time_h, plan.expected.p_complete_on_spot);
  std::printf("optimizer: %zu model evaluations in %.2f s\n\n", plan.model_evaluations,
              plan.optimize_seconds);

  // 5. Replay the plan against the recorded market from a few start points.
  const ReplayEngine engine(&market);
  std::printf("replays:\n");
  for (double start_h : {60.0, 120.0, 200.0}) {
    const ReplayResult r = engine.replay(plan, start_h);
    std::printf("  start %5.0f h: $%6.2f in %5.1f h — %s\n", start_h, r.cost_usd, r.time_h,
                r.completed_on_spot ? "completed on spot"
                                    : "recovered on demand from the best checkpoint");
  }
  std::printf("\nSavings vs always-on-demand: %.0f%% (expected)\n",
              100.0 * (1.0 - plan.expected.cost_usd / baseline.full_cost_usd()));
  return 0;
}
