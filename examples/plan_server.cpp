// plan_server — interactive/scripted driver for the PlanService.
//
//   $ ./plan_server [--days D=5] [--seed S=2014] [--solves C=2] [--queue Q=16]
//
// Reads commands from stdin (pipe a script, or type at the prompt):
//
//   plan <APP> <deadline_factor> [type=NAME]* [zone=NAME]*
//         serve one request; deadline = factor × the app's on-demand baseline
//   burst <APP> <deadline_factor> <n>
//         n concurrent identical requests — watch single-flight collapse them
//   tick [steps=8]
//         ingest the next pre-generated market steps and bump the epoch
//   feed <steps> [producers=1]
//         replay the next steps through the streaming feed pipeline
//         (src/feed): ticks flow through the bounded MPSC queue when
//         producers > 1, commit through the resolution frontier, and publish
//         epoch batches with windowed re-estimation — the live-ingestion
//         path, where tick is the hand-rolled batch one
//   platform [<file>|example] [APP]
//         load and inspect a declarative platform file (src/platform):
//         parse counters, host/link/zone tables, and the per-(type, zone)
//         derived T/O/R profiles a platform-aware optimizer would consume.
//         With no path (or "example") the built-in heterogeneous example
//         platform (examples/platforms/hetero_slow_zone.plat) is shown
//   shards <N> [APP] [factor] [burst=8]
//         spin up an N-shard replicated serving tier (src/service/sharded)
//         over the current market: spray `burst` identical requests onto
//         different shards (the cross-shard dedup tier forwards them all to
//         the ring-home shard — exactly one solve), then push a small batch
//         through the async submit_batch/harvest API, and print per-shard +
//         aggregate counters with the dedup ledger's verdict
//   serve [N=4]
//         start the wire-serving front end (src/net): an N-shard tier under
//         a PlanServerLoop with one router-aware and one spray PlanClient
//         dialed in; subsequent `client` requests go over the wire protocol
//   client <routed|spray> <APP> <factor> [n=1]
//         send n plan requests through the chosen wire client (blocking
//         round trips, correlated by request id); routed lands every key on
//         its ring home — watch `stats` keep forwarded at 0 — while spray
//         round-robins and pays one forward per misrouted request
//   epoch   print the current market epoch
//   stats   print the service counters and solve-latency percentiles; with
//           the wire front end up, also a StatsRequest round trip's tier
//           ledger (routed/sprayed/forwarded, duplicate solves, frames)
//   help    this text
//   quit
//
// Example session:
//   plan BT 1.5          → solved (optimizer ran)
//   plan BT 1.5          → hit (O(1), same epoch)
//   tick                 → epoch 2
//   plan BT 1.5          → solved (market moved)
//   burst SP 1.4 8       → 1 solve + 7 joins
//   feed 96 4            → 4 producers stream a day of ticks, epochs advance
//   shards 4 BT 1.5 8    → 8-way spray across 4 shards: 1 solve, 0 duplicates
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "feed/pipeline.h"
#include "feed/tick_source.h"
#include "net/client.h"
#include "net/server.h"
#include "platform/examples.h"
#include "platform/parser.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "service/plan_service.h"
#include "service/sharded/batch.h"
#include "service/sharded/sharded_service.h"

using namespace sompi;

namespace {

AppProfile resolve_app(const std::string& name) {
  if (name == "LAMMPS32") return lammps_profile(32);
  if (name == "LAMMPS128") return lammps_profile(128);
  return paper_profile(name);  // throws with a clear message when unknown
}

void print_plan(const PlanResponse& r, double wall_ms) {
  if (r.outcome == PlanOutcome::kShed) {
    std::printf("→ SHED (service overloaded) at epoch %llu\n",
                static_cast<unsigned long long>(r.epoch));
    return;
  }
  const Plan& p = *r.plan;
  std::printf("→ %s in %.3f ms at epoch %llu: E[cost] $%.2f, E[time] %.1f h, %zu group(s)%s\n",
              outcome_label(r.outcome), wall_ms, static_cast<unsigned long long>(r.epoch),
              p.expected.cost_usd, p.expected.time_h, p.groups.size(),
              p.uses_spot() ? "" : " (on-demand only)");
  for (const GroupPlan& g : p.groups)
    std::printf("    %-22s M=%-3d bid $%-7.4f F=%d/%d steps\n", g.name.c_str(), g.instances,
                g.bid_usd, g.f_steps, g.t_steps);
}

void print_stats(const ServiceStats& s) {
  std::printf("epoch %llu | requests %llu: hits %llu, solves %llu, joins %llu, sheds %llu\n",
              static_cast<unsigned long long>(s.epoch),
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.solves),
              static_cast<unsigned long long>(s.dedup_joins),
              static_cast<unsigned long long>(s.sheds));
  std::printf("cache %zu entrie(s), %llu stale-evicted | solve p50 %.2f ms, p99 %.2f ms, "
              "total %.2f s\n",
              s.cache_entries, static_cast<unsigned long long>(s.stale_evicted), s.solve_p50_ms,
              s.solve_p99_ms, s.solve_seconds_total);
  std::printf("replans %llu (%llu warm-seeded) | tables reused %llu / rebuilt %llu | "
              "replan p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(s.replan_count),
              static_cast<unsigned long long>(s.warm_seeds),
              static_cast<unsigned long long>(s.replan_table_hits),
              static_cast<unsigned long long>(s.replan_table_misses), s.replan_p50_ms,
              s.replan_p99_ms);
}

void print_wire_stats(const net::WireTierStats& w) {
  std::printf("wire tier (epoch %llu): requests %llu — hits %llu, solves %llu, joins %llu, "
              "sheds %llu (+%llu at the wire door)\n",
              static_cast<unsigned long long>(w.epoch),
              static_cast<unsigned long long>(w.requests),
              static_cast<unsigned long long>(w.hits),
              static_cast<unsigned long long>(w.solves),
              static_cast<unsigned long long>(w.dedup_joins),
              static_cast<unsigned long long>(w.sheds),
              static_cast<unsigned long long>(w.wire_sheds));
  std::printf("routing ledger: routed %llu, sprayed %llu, forwarded %llu%s | "
              "duplicate solves %llu — %s\n",
              static_cast<unsigned long long>(w.routed),
              static_cast<unsigned long long>(w.sprayed),
              static_cast<unsigned long long>(w.forwarded),
              w.forwarded == 0 ? " (router-aware clients land home)" : "",
              static_cast<unsigned long long>(w.duplicate_solves),
              w.duplicate_solves == 0 ? "exactly-once economy holds" : "VIOLATED");
  std::printf("wire: %llu connection(s), frames %llu in / %llu out, %llu rejected, "
              "%llu error(s)\n",
              static_cast<unsigned long long>(w.connections),
              static_cast<unsigned long long>(w.frames_received),
              static_cast<unsigned long long>(w.responses_sent),
              static_cast<unsigned long long>(w.frames_rejected),
              static_cast<unsigned long long>(w.wire_errors));
}

void print_platform(const Catalog& catalog, const platform::Platform& plat,
                    const platform::PlatformParseStats& stats, const AppProfile& app) {
  std::printf("parsed %zu host(s), %zu link(s), %zu zone(s)", stats.hosts_parsed,
              stats.links_parsed, stats.zones_parsed);
  if (stats.skipped() > 0)
    std::printf(" — %zu line(s) skipped (unknown %zu, no-name %zu, missing %zu, bad %zu, "
                "dup %zu, dangling %zu)",
                stats.skipped(), stats.unknown_directive, stats.missing_name,
                stats.missing_field, stats.bad_field, stats.duplicate_name,
                stats.dangling_link);
  std::printf("\n");

  for (const platform::Host& h : plat.hosts())
    std::printf("  host %-12s gips/core %-5.2f nic %-6.2f Gbit/s lat %-5.0f us "
                "disk %.0f MB/s\n",
                h.type.c_str(), h.gips_per_core, h.nic_gbps, h.nic_latency_us, h.disk_mbps);
  for (const platform::Link& l : plat.links())
    std::printf("  link %-12s %-7.2f Gbit/s lat %-5.0f us %s\n", l.name.c_str(), l.gbps,
                l.latency_us, l.shared ? "shared" : "dedicated");
  for (const platform::ZoneNode& z : plat.zones())
    std::printf("  zone %-12s intra=%s uplink=%s compute_scale=%.2f\n", z.name.c_str(),
                plat.link(z.intra_link).name.c_str(), plat.link(z.uplink).name.c_str(),
                z.compute_scale);

  // The derived per-(type, zone) profiles a platform-aware optimizer feeds
  // into the cost model: productive hours T, checkpoint overhead O and
  // recovery overhead R for `app`.
  const ExecTimeEstimator est(&plat);
  std::printf("  derived profiles for %s (T / O / R hours):\n", app.name.c_str());
  for (const InstanceType& type : catalog.types()) {
    std::printf("    %-12s", type.name.c_str());
    for (const Zone& zone : catalog.zones()) {
      const double t_h = est.hours(app, type, zone.name);
      const CheckpointCosts ck = est.checkpoint_costs(app, type, zone.name);
      std::printf("  %s %.2f/%.3f/%.3f", zone.name.c_str(), t_h, ck.checkpoint_h,
                  ck.recovery_h);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double days = 5.0;
  std::uint64_t seed = 2014;
  std::size_t solves = 2, queue = 16;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--days") days = std::atof(argv[i + 1]);
    if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (arg == "--solves") solves = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    if (arg == "--queue") queue = static_cast<std::size_t>(std::atoll(argv[i + 1]));
  }

  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  const double step_hours = 0.25;

  // Generate `days` of history to serve from, plus a hidden "future" tail
  // that tick commands reveal step by step — a scripted stand-in for a live
  // spot-price feed.
  const double future_days = 2.0;
  Market full = generate_market(catalog, paper_market_profile(catalog), days + future_days,
                                step_hours, seed);
  const std::size_t visible = static_cast<std::size_t>(days * 24.0 / step_hours);
  MarketBoard board(full.window(0, visible));
  std::size_t cursor = visible;
  const std::size_t total_steps = full.trace({0, 0}).steps();

  ServiceConfig cfg;
  cfg.max_concurrent_solves = solves;
  cfg.max_queued_solves = queue;
  cfg.opt.max_candidates = 5;
  cfg.opt.setup.log_levels = 5;
  PlanService service(&catalog, &est, &board, cfg);
  const OnDemandSelector selector(&catalog, &est);

  // Wire-serving session state (`serve` / `client` commands). Declaration
  // order is destruction safety: clients close and join their readers
  // before the server loop they dial into, which drains before its tier.
  std::unique_ptr<ShardedPlanService> wire_tier;
  std::unique_ptr<net::PlanServerLoop> wire_server;
  std::unique_ptr<net::PlanClient> wire_routed;
  std::unique_ptr<net::PlanClient> wire_spray;

  const bool tty = isatty(fileno(stdin)) != 0;
  if (tty)
    std::printf("plan_server ready (epoch %llu, %zu visible steps). Type 'help'.\n",
                static_cast<unsigned long long>(board.epoch()), visible);

  std::string line;
  while (true) {
    if (tty) {
      std::printf("sompi> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;

      if (cmd == "help") {
        std::printf("commands: plan <APP> <factor> [type=..]* [zone=..]* | "
                    "burst <APP> <factor> <n> | tick [steps] | "
                    "feed <steps> [producers] | platform [file|example] [APP] | "
                    "shards <N> [APP] [factor] [burst] | serve [N] | "
                    "client <routed|spray> <APP> <factor> [n] | epoch | stats | quit\n");

      } else if (cmd == "plan" || cmd == "burst") {
        std::string app_name;
        double factor = 1.5;
        in >> app_name >> factor;
        PlanRequest request;
        request.app = resolve_app(app_name);
        request.deadline_h = selector.baseline(request.app).t_h * factor;
        int n = 1;
        if (cmd == "burst") {
          in >> n;
          if (n < 1) n = 1;
        }
        std::string constraint;
        while (in >> constraint) {
          if (constraint.rfind("type=", 0) == 0)
            request.allowed_types.push_back(constraint.substr(5));
          else if (constraint.rfind("zone=", 0) == 0)
            request.allowed_zones.push_back(constraint.substr(5));
        }
        if (n == 1) {
          const auto t0 = std::chrono::steady_clock::now();
          const PlanResponse r = service.serve(request);
          const double ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
          print_plan(r, ms);
        } else {
          const ServiceStats before = service.stats();
          std::vector<std::thread> threads;
          for (int t = 0; t < n; ++t)
            threads.emplace_back([&] { (void)service.serve(request); });
          for (auto& th : threads) th.join();
          const ServiceStats after = service.stats();
          std::printf("→ burst of %d: %llu solve(s), %llu join(s), %llu hit(s), %llu shed(s)\n",
                      n, static_cast<unsigned long long>(after.solves - before.solves),
                      static_cast<unsigned long long>(after.dedup_joins - before.dedup_joins),
                      static_cast<unsigned long long>(after.hits - before.hits),
                      static_cast<unsigned long long>(after.sheds - before.sheds));
        }

      } else if (cmd == "tick") {
        std::size_t steps = 8;
        in >> steps;
        steps = std::min(steps, total_steps - cursor);
        if (steps == 0) {
          std::printf("→ market feed exhausted (regenerate with --days)\n");
          continue;
        }
        std::vector<PriceUpdate> updates;
        for (std::size_t t = 0; t < catalog.types().size(); ++t)
          for (std::size_t z = 0; z < catalog.zones().size(); ++z) {
            const CircleGroupSpec group{t, z};
            const SpotTrace slice = full.trace(group).window(cursor, steps);
            updates.push_back(PriceUpdate{group, slice.prices()});
          }
        cursor += steps;
        const std::uint64_t epoch = board.ingest(updates);
        std::printf("→ ingested %zu step(s)/group, epoch %llu, stale evicted %zu\n", steps,
                    static_cast<unsigned long long>(epoch), service.invalidate_stale());

      } else if (cmd == "feed") {
        std::size_t steps = 8, producers = 1;
        in >> steps >> producers;
        steps = std::min(steps, total_steps - cursor);
        if (steps == 0) {
          std::printf("→ market feed exhausted (regenerate with --days)\n");
          continue;
        }
        producers = std::clamp<std::size_t>(producers, 1, 8);
        // A fresh pipeline keys off the board's current length, so repeated
        // feed commands resume exactly where the last one (or tick) stopped.
        feed::FeedConfig fcfg;
        fcfg.publish_every = 4;
        fcfg.estimation.samples = 128;
        fcfg.estimation.horizon_steps = 32;
        feed::FeedPipeline pipe(&board, fcfg);
        if (producers == 1) {
          feed::ReplayTickSource source(&full, {}, cursor, steps);
          pipe.ingest(source);
        } else {
          const std::vector<CircleGroupSpec> all = catalog.all_groups();
          pipe.start();
          std::vector<std::thread> threads;
          for (std::size_t p = 0; p < producers; ++p)
            threads.emplace_back([&, p] {
              std::vector<CircleGroupSpec> mine;
              for (std::size_t g = p; g < all.size(); g += producers)
                mine.push_back(all[g]);
              feed::ReplayTickSource shard(&full, mine, cursor, steps);
              pipe.pump(shard);
            });
          for (auto& th : threads) th.join();
          pipe.stop();
        }
        pipe.flush();
        cursor += steps;
        const feed::FeedStats fs = pipe.stats();
        std::printf("→ streamed %llu tick(s) via %zu producer(s): %llu step(s) committed, "
                    "%llu epoch(s) published, digest %016llx, epoch %llu, stale evicted %zu\n",
                    static_cast<unsigned long long>(fs.ticks_ingested), producers,
                    static_cast<unsigned long long>(fs.committed_steps),
                    static_cast<unsigned long long>(fs.epochs_published),
                    static_cast<unsigned long long>(pipe.commit_digest()),
                    static_cast<unsigned long long>(board.epoch()),
                    service.invalidate_stale());

      } else if (cmd == "platform") {
        std::string path, app_name;
        in >> path >> app_name;
        const AppProfile app = resolve_app(app_name.empty() ? "BT" : app_name);
        platform::PlatformParseStats pstats;
        if (path.empty() || path == "example") {
          const platform::Platform plat =
              platform::parse_platform(platform::example_hetero_platform_text(), &pstats);
          std::printf("→ built-in example platform (examples/platforms/"
                      "hetero_slow_zone.plat)\n");
          print_platform(catalog, plat, pstats, app);
        } else {
          const platform::Platform plat = platform::read_platform_file(path, &pstats);
          std::printf("→ %s\n", path.c_str());
          print_platform(catalog, plat, pstats, app);
        }

      } else if (cmd == "shards") {
        std::size_t n = 4;
        std::string app_name = "BT";
        double factor = 1.5;
        int burst = 8;
        in >> n >> app_name >> factor >> burst;
        n = std::clamp<std::size_t>(n, 1, 16);
        if (burst < 1) burst = 8;

        // A fresh tier over the board's CURRENT market: every shard's
        // replica starts bit-identical, fed by one fan-out from here on.
        ShardedConfig scfg;
        scfg.shards = n;
        scfg.service.max_concurrent_solves = solves;
        scfg.service.max_queued_solves = std::max<std::size_t>(queue, 64);
        scfg.service.opt.max_candidates = 5;
        scfg.service.opt.setup.log_levels = 5;
        ShardedPlanService tier(&catalog, &est, *board.snapshot().market, scfg);

        PlanRequest request;
        request.app = resolve_app(app_name);
        request.deadline_h = selector.baseline(request.app).t_h * factor;
        const std::size_t home = tier.home_shard(request);

        // Spray the identical request onto `burst` different landing shards
        // at once — the load-balancer-gone-wrong case the dedup tier exists
        // for.
        std::vector<std::thread> threads;
        for (int t = 0; t < burst; ++t)
          threads.emplace_back([&, t] {
            (void)tier.serve_on(static_cast<std::size_t>(t) % tier.shard_count(), request);
          });
        for (auto& th : threads) th.join();

        ShardedStats ss = tier.stats();
        std::printf("→ sprayed %d identical request(s) across %zu shard(s): "
                    "%llu solve(s), %llu join(s), %llu hit(s), %llu forwarded home to "
                    "shard %zu\n",
                    burst, n, static_cast<unsigned long long>(ss.total.solves),
                    static_cast<unsigned long long>(ss.total.dedup_joins),
                    static_cast<unsigned long long>(ss.total.hits),
                    static_cast<unsigned long long>(ss.forwarded), home);
        std::printf("  dedup ledger: %zu distinct solve(s), %llu duplicate(s) — %s\n",
                    tier.distinct_solves(),
                    static_cast<unsigned long long>(ss.duplicate_solves),
                    ss.duplicate_solves == 0 ? "exactly-once economy holds" : "VIOLATED");

        // The async batch front door: a few distinct deadlines through
        // submit_batch, drained, then harvested exactly once each.
        {
          AsyncBatchService batch_api(&tier, {.workers = 4, .queue_capacity = 64});
          std::vector<PlanRequest> requests;
          for (int i = 0; i < 6; ++i) {
            PlanRequest r = request;
            r.deadline_h = request.deadline_h * (1.0 + 0.05 * i);
            requests.push_back(std::move(r));
          }
          batch_api.submit_batch(requests);
          batch_api.drain();
          const std::vector<BatchCompletion> done = batch_api.harvest();
          std::printf("  batch: %zu submitted → %zu completed, outcomes:", requests.size(),
                      done.size());
          for (const BatchCompletion& c : done)
            std::printf(" #%llu=%s", static_cast<unsigned long long>(c.ticket),
                        c.error.empty() ? outcome_label(c.response.outcome) : "error");
          std::printf("\n");
        }

        ss = tier.stats();
        for (std::size_t i = 0; i < tier.shard_count(); ++i) {
          const ServiceStats& sh = ss.per_shard[i];
          std::printf("  shard %zu%s: requests %llu, hits %llu, solves %llu, joins %llu, "
                      "cache %zu\n",
                      i, i == home ? " (home)" : "",
                      static_cast<unsigned long long>(sh.requests),
                      static_cast<unsigned long long>(sh.hits),
                      static_cast<unsigned long long>(sh.solves),
                      static_cast<unsigned long long>(sh.dedup_joins), sh.cache_entries);
        }
        std::printf("  aggregate: requests %llu (routed %llu, sprayed %llu), epoch %llu\n",
                    static_cast<unsigned long long>(ss.total.requests),
                    static_cast<unsigned long long>(ss.routed),
                    static_cast<unsigned long long>(ss.sprayed),
                    static_cast<unsigned long long>(ss.total.epoch));

      } else if (cmd == "serve") {
        std::size_t n = 4;
        in >> n;
        n = std::clamp<std::size_t>(n, 1, 16);
        // Tear down any previous front end in dependency order.
        wire_spray.reset();
        wire_routed.reset();
        wire_server.reset();
        wire_tier.reset();
        ShardedConfig scfg;
        scfg.shards = n;
        scfg.service.max_concurrent_solves = solves;
        scfg.service.max_queued_solves = std::max<std::size_t>(queue, 64);
        scfg.service.opt.max_candidates = 5;
        scfg.service.opt.setup.log_levels = 5;
        wire_tier = std::make_unique<ShardedPlanService>(&catalog, &est,
                                                         *board.snapshot().market, scfg);
        wire_server = std::make_unique<net::PlanServerLoop>(wire_tier.get(),
                                                            net::ServerConfig{});
        wire_routed = std::make_unique<net::PlanClient>(wire_server.get(),
                                                        net::ClientMode::kRouted);
        wire_spray = std::make_unique<net::PlanClient>(wire_server.get(),
                                                       net::ClientMode::kSpray);
        std::printf("→ wire front end up: %zu shard(s), %zu connection(s) per client "
                    "(one per shard), epoch %llu\n",
                    n, wire_routed->connection_count(),
                    static_cast<unsigned long long>(wire_tier->fanout().epoch()));

      } else if (cmd == "client") {
        if (wire_server == nullptr) {
          std::printf("→ no wire front end (run 'serve' first)\n");
          continue;
        }
        std::string mode_name, app_name;
        double factor = 1.5;
        int n = 1;
        in >> mode_name >> app_name >> factor >> n;
        if (n < 1) n = 1;
        net::PlanClient* which = mode_name == "spray" ? wire_spray.get() : wire_routed.get();
        if (mode_name != "spray" && mode_name != "routed") {
          std::printf("→ client mode must be 'routed' or 'spray'\n");
          continue;
        }
        PlanRequest request;
        request.app = resolve_app(app_name);
        request.deadline_h = selector.baseline(request.app).t_h * factor;
        for (int i = 0; i < n; ++i) {
          const std::size_t shard = which->pick_shard(request);
          const auto t0 = std::chrono::steady_clock::now();
          const PlanResponse r = which->plan(request);
          const double ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
          std::printf("  [%s → conn %zu]", mode_name.c_str(), shard);
          print_plan(r, ms);
        }

      } else if (cmd == "epoch") {
        std::printf("epoch %llu\n", static_cast<unsigned long long>(board.epoch()));

      } else if (cmd == "stats") {
        print_stats(service.stats());
        // The wire tier's ledger, fetched THROUGH the wire — a StatsRequest
        // round trip, so the shell sees exactly what a remote client would.
        if (wire_routed != nullptr) print_wire_stats(wire_routed->server_stats());

      } else {
        std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  if (tty) std::printf("bye\n");
  return 0;
}
