// Fault-tolerant solver, live: the end-to-end demonstration that a SOMPI
// plan drives a REAL message-passing application. A distributed LU solver
// runs on the mini-MPI runtime under a plan whose circle groups are killed
// exactly when the spot trace goes out of bid; coordinated checkpoints land
// in a simulated S3 bucket; the run either completes in a replica or is
// recovered on demand from the most advanced snapshot — and the final
// checksum is verified against the sequential reference either way.
//
//   $ ./fault_tolerant_solver
#include <cmath>
#include <cstdio>

#include "apps/lu.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "sim/live.h"

using namespace sompi;

int main() {
  const Catalog catalog = paper_catalog();

  // A market whose us-east-1a is guaranteed hostile: low for 2.5 h, then a
  // spike that kills any sane bid; the other zones stay calm.
  std::vector<SpotTrace> traces;
  for (const auto& g : catalog.all_groups()) {
    std::vector<double> prices;
    const double base = base_spot_price(catalog.type(g.type_index));
    if (g.zone_index == 0) {
      prices.assign(10, base);
      prices.resize(200, base * 120.0);
    } else {
      prices.assign(200, base);
    }
    traces.emplace_back(0.25, std::move(prices));
  }
  const Market market(&catalog, std::move(traces));

  // Hand-build a two-replica plan: m1.small in the doomed zone and in a calm
  // one (in production the optimizer produces this; here we keep the demo
  // deterministic).
  Plan plan;
  plan.app = "LU";
  plan.step_hours = 0.25;
  plan.od.type_index = catalog.type_index("c3.xlarge");
  plan.od.instances = 1;
  plan.od.rate_usd_h = 0.21;
  plan.od.t_h = 4.0;
  plan.od.feasible = true;
  for (const std::size_t zone : {0u, 1u}) {
    GroupPlan g;
    g.spec = {catalog.type_index("m1.small"), zone};
    g.name = catalog.group_name(g.spec);
    g.instances = 4;
    g.t_steps = 24;  // 6 h of productive work
    g.o_steps = 0.1;
    g.r_steps = 0.2;
    g.bid_usd = 2.0 * base_spot_price(catalog.type(g.spec.type_index));
    g.f_steps = 4;  // checkpoint every hour
    plan.groups.push_back(g);
  }

  // The real application: 4-rank LU, 60 iterations, checkpoints per plan.
  apps::LuConfig lu;
  lu.nx = 32;
  lu.ny = 32;
  lu.iterations = 60;
  const double reference = apps::lu_reference(lu);

  S3Sim s3;
  const LiveExecutor executor(&market);
  const LiveRunResult run = executor.execute(
      plan, /*start_h=*/0.0, /*world_size=*/4, lu.iterations,
      [&lu](mpi::Comm& comm, CoordinatedCheckpointing* ck, int checkpoint_every) {
        apps::LuConfig cfg = lu;
        cfg.checkpoint_every = checkpoint_every;
        return apps::lu_run(comm, cfg, ck);
      },
      s3);

  std::printf("replica outcomes:\n");
  for (const auto& g : run.groups)
    std::printf("  %-22s %s%s, %d coordinated checkpoints in S3\n", g.name.c_str(),
                g.completed ? "completed" : "KILLED out-of-bid",
                g.killed ? (" at step " + std::to_string(g.kill_step)).c_str() : "",
                g.checkpoints_saved);
  std::printf("outcome: %s\n", run.completed_on_spot
                                   ? "completed on spot"
                                   : "recovered on demand from the best checkpoint");
  std::printf("S3 bucket: %zu objects, %.1f MB stored, %llu PUTs, cost $%.6f for 24 h\n",
              s3.list("").size(), s3.bytes_stored() / 1e6,
              static_cast<unsigned long long>(s3.put_count()), s3.cost_usd(24.0));

  const bool correct = std::abs(run.checksum - reference) < 1e-9 * std::abs(reference) + 1e-12;
  std::printf("checksum %.12f vs sequential reference %.12f → %s\n", run.checksum, reference,
              correct ? "MATCH" : "MISMATCH");
  return correct ? 0 : 1;
}
