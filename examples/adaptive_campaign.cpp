// Adaptive campaign: run a LAMMPS-style MD workload to completion with the
// full Algorithm-1 loop (per-window re-optimization, update maintenance,
// on-demand guard) at several process counts and deadlines — the paper's
// §5.3.1 real-world-application study in miniature.
//
//   $ ./adaptive_campaign
#include <cstdio>

#include "common/table.h"
#include "core/adaptive.h"
#include "profile/paper_profiles.h"
#include "sim/replay.h"

using namespace sompi;

int main() {
  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/14.0, 0.25, 99);
  const ExecTimeEstimator estimator;
  const OnDemandSelector od_selector(&catalog, &estimator);

  AdaptiveConfig config;  // T_m = 15 h, 48 h lookback, update maintenance on
  const AdaptiveEngine engine(&catalog, &estimator, config);

  Table t("LAMMPS campaign (adaptive SOMPI, trace replay, start at hour 72)");
  t.header({"processes", "deadline", "baseline $", "SOMPI $", "savings", "hours", "windows",
            "od fallback"});
  for (const int processes : {32, 64, 128}) {
    const AppProfile app = lammps_profile(processes);
    const OnDemandChoice baseline = od_selector.baseline(app);
    for (const bool loose : {true, false}) {
      const double deadline = baseline.t_h * (loose ? 1.5 : 1.05);
      MarketReplayOracle oracle(&market);
      const AdaptiveResult r = engine.run(app, oracle, /*start_h=*/72.0, deadline);
      t.row({std::to_string(processes), loose ? "loose" : "tight",
             Table::num(baseline.full_cost_usd(), 2), Table::num(r.cost_usd, 2),
             Table::num(100.0 * (1.0 - r.cost_usd / baseline.full_cost_usd()), 0) + "%",
             Table::num(r.hours, 1) + "/" + Table::num(deadline, 1),
             std::to_string(r.windows), r.fell_back_to_ondemand ? "yes" : "no"});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nThe paper's §5.3.1 LAMMPS shape: at small process counts the problem is\n"
              "computation-bound and cheap instance families yield deep savings; at 128\n"
              "processes it turns communication-bound and only cc2.8xlarge remains viable,\n"
              "so the loose/tight gap narrows.\n");
  return 0;
}
