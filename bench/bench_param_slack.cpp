// §5.2 parameter study — Slack: the fraction of the deadline reserved for
// checkpointing/recovery when selecting the on-demand tier. The paper fixes
// the deadline at Baseline Time × 1.5 and sweeps slack, finding a knee at
// 20%: below it, more slack trades execution time for cost; above it,
// nothing further is gained and the longest time plateaus (~1.16× there —
// here the plateau level reflects our calibration).
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Parameter study — Slack", "cost/time vs slack (BT, deadline 1.5×)");

  const Experiment env;
  const AppProfile bt = paper_profile("BT");
  const double deadline = env.deadline(bt, /*loose=*/true);

  Table t("BT under varying slack");
  t.header({"slack", "norm cost", "norm time", "max norm time", "miss"});
  for (double slack : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40}) {
    AdaptiveConfig ad = env.adaptive_config();
    ad.opt.slack = slack;
    const AdaptiveEngine engine(&env.catalog(), &env.estimator(), ad);

    MonteCarloConfig mc;
    mc.runs = env.options().runs;
    mc.reserve_h = 96.0;
    mc.seed = env.options().seed ^ 0x51AC;
    const MonteCarloRunner runner(&env.market(), {}, mc);
    const MonteCarloStats stats = runner.run_adaptive(engine, bt, deadline);

    t.row({Table::num(slack, 2), Table::num(stats.cost.mean / env.baseline_cost(bt), 3),
           Table::num(stats.time.mean / env.baseline_time(bt), 3),
           Table::num(stats.time.max / env.baseline_time(bt), 3),
           Table::num(100.0 * stats.deadline_miss_rate, 0) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  bench::note("expected shape: cost decreases with slack up to a knee (~20%), then flattens; "
              "execution time grows with slack and plateaus past the knee (§5.2).");
  return 0;
}
