// Warm-start re-plan latency: dirty-group delta size vs cold solve
// (DESIGN.md §14, ISSUE 9).
//
//   $ ./bench_replan [--iters N=30] [--json <path>] [--check <baseline.json>]
//
// A PlanService with warm re-planning serves one unconstrained request over
// a MarketBoard while epochs land with exactly d dirty groups, for
// d ∈ {1, K/2, K} at K = 8 kept candidates. Every epoch is measured twice:
// a cold solve() (the oracle — always the from-scratch path) and the warm
// serve() re-plan. Per iteration the warm plan must be fingerprint-identical
// to the cold one and the table-reuse counters must be EXACT:
// tables_reused == K − d, tables_built == d.
//
// Acceptance gates: exactly K candidates kept; exact counters and zero
// fingerprint divergence on every iteration; and the headline —
// single-group-delta warm re-plans are ≥ 5× faster than cold solves (p50).
// --check compares the deterministic counters (kept, delta, tables_*,
// divergence) against the committed baseline (bench/BENCH_replan.json)
// exact-equality; wall-clock ratios are printed and gated in-process but
// never compared across machines.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/plan_service.h"

using namespace sompi;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void gate(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 30;
  std::string check_path;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) iters = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--check") == 0) check_path = argv[i + 1];
  }

  bench::banner("REPLAN", "warm-start re-plan latency vs cold solve, by dirty-group delta");

  constexpr std::size_t kK = 8;  // kept candidate groups — the paper's K
  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0,
                                  /*step_hours=*/0.25, /*seed=*/2015);
  MarketBoard board(market);

  ServiceConfig cfg;
  cfg.cache = {.shards = 2, .capacity = 16};
  cfg.opt.max_candidates = kK;
  cfg.opt.max_groups = 2;
  cfg.opt.setup.log_levels = 2;
  cfg.opt.setup.failure.samples = 200;
  cfg.opt.ratio_bins = 16;
  PlanService service(&catalog, &est, &board, cfg);

  PlanRequest request;
  request.app = paper_profile("BT");
  // Loose enough that far more than K groups pass the deadline filter, so
  // the expected-price pruning (not feasibility) picks the K kept.
  request.deadline_h = OnDemandSelector(&catalog, &est).baseline(request.app).t_h * 4.0;

  // --- Fill: the cold first solve builds everything -------------------------
  const PlanResponse fill = service.serve(request);
  if (fill.outcome != PlanOutcome::kSolved || fill.plan == nullptr) {
    std::fprintf(stderr, "FAIL: fill solve did not run\n");
    return 1;
  }
  const std::uint64_t kept_count = fill.plan->stats.tables_built;
  std::printf("fill:     %llu candidate tables built (K = %zu)\n",
              static_cast<unsigned long long>(kept_count), kK);

  // --- Probe: find the kept candidates by dirtying one group at a time. ----
  // Each probe appends the group's own last price (content changes, ranking
  // barely moves) and checks whether the re-plan rebuilt a table.
  std::vector<CircleGroupSpec> kept;
  for (const CircleGroupSpec& g : catalog.all_groups()) {
    const SpotTrace& trace = board.snapshot().market->trace(g);
    board.ingest({PriceUpdate{g, {trace.price(trace.steps() - 1)}}});
    const PlanResponse probe = service.serve(request);
    if (probe.plan != nullptr && probe.plan->stats.tables_built == 1) kept.push_back(g);
  }
  std::printf("probe:    %zu of %zu groups are kept candidates\n", kept.size(),
              catalog.all_groups().size());
  const bool kept_ok = kept_count == kK && kept.size() == kK;

  // --- Measure: cold vs warm at each delta size -----------------------------
  struct Series {
    std::size_t delta = 0;
    std::vector<double> cold_s;
    std::vector<double> warm_s;
    std::uint64_t counter_errors = 0;
    std::uint64_t divergence = 0;
  };
  std::vector<Series> series;
  for (const std::size_t delta : {std::size_t{1}, kK / 2, kK}) {
    Series s;
    s.delta = delta;
    for (int it = 0; it < iters; ++it) {
      std::vector<PriceUpdate> updates;
      for (std::size_t j = 0; j < delta && j < kept.size(); ++j) {
        const CircleGroupSpec g = kept[(static_cast<std::size_t>(it) + j) % kept.size()];
        const SpotTrace& trace = board.snapshot().market->trace(g);
        updates.push_back(PriceUpdate{g, {trace.price(trace.steps() - 1)}});
      }
      board.ingest(updates);
      const MarketSnapshot snap = board.snapshot();

      const auto t_cold = Clock::now();
      const Plan cold = service.solve(canonicalized(request), *snap.market);
      s.cold_s.push_back(seconds_since(t_cold));

      const auto t_warm = Clock::now();
      const PlanResponse warm = service.serve(request);
      s.warm_s.push_back(seconds_since(t_warm));

      if (warm.outcome != PlanOutcome::kSolved || warm.plan == nullptr) {
        ++s.divergence;
        continue;
      }
      if (plan_fingerprint(*warm.plan) != plan_fingerprint(cold)) ++s.divergence;
      if (warm.plan->stats.tables_built != delta ||
          warm.plan->stats.tables_reused != kK - delta)
        ++s.counter_errors;
    }
    series.push_back(std::move(s));
  }

  // --- Report ---------------------------------------------------------------
  const auto p50 = [](const std::vector<double>& v) {
    return bench::percentile_nearest_rank(v, 0.50);
  };
  double speedup_1 = 0.0;
  std::vector<bench::JsonResult> results;
  std::uint64_t counter_errors = 0, divergence = 0;
  for (const Series& s : series) {
    const double cold_ms = p50(s.cold_s) * 1e3;
    const double warm_ms = p50(s.warm_s) * 1e3;
    const double ratio = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    if (s.delta == 1) speedup_1 = ratio;
    counter_errors += s.counter_errors;
    divergence += s.divergence;
    std::printf("delta %zu:  cold p50 %8.3f ms  |  warm p50 %8.3f ms  |  %5.1fx"
                "  (reused %zu, rebuilt %zu)\n",
                s.delta, cold_ms, warm_ms, ratio, kK - s.delta, s.delta);
    const double warm_mean_ms =
        std::accumulate(s.warm_s.begin(), s.warm_s.end(), 0.0) /
        static_cast<double>(s.warm_s.size()) * 1e3;
    results.push_back({"replan_delta_" + std::to_string(s.delta), s.warm_s.size(),
                       warm_mean_ms, warm_ms,
                       bench::percentile_nearest_rank(s.warm_s, 0.99) * 1e3,
                       {{"kept", static_cast<double>(kK)},
                        {"delta", static_cast<double>(s.delta)},
                        {"tables_reused", static_cast<double>(kK - s.delta)},
                        {"tables_built", static_cast<double>(s.delta)},
                        {"counter_errors", static_cast<double>(s.counter_errors)},
                        {"divergence", static_cast<double>(s.divergence)},
                        {"cold_p50_ms", cold_ms},
                        {"speedup_p50", ratio}}});
  }
  const ServiceStats stats = service.stats();
  std::printf("service:  %llu re-plans | table hits %llu / misses %llu | "
              "replan p50 %.3f ms p99 %.3f ms\n",
              static_cast<unsigned long long>(stats.replan_count),
              static_cast<unsigned long long>(stats.replan_table_hits),
              static_cast<unsigned long long>(stats.replan_table_misses),
              stats.replan_p50_ms, stats.replan_p99_ms);

  bench::note("acceptance gates");
  gate("exactly K candidates kept by the fill solve and the probe", kept_ok);
  gate("exact table-reuse counters on every iteration (reused = K-d, built = d)",
       counter_errors == 0);
  gate("every warm plan bit-matches the cold solve at its epoch", divergence == 0);
  std::printf("  [%s] single-group-delta warm re-plan >= 5x faster than cold "
              "(p50 %.1fx)\n",
              speedup_1 >= 5.0 ? "PASS" : "FAIL", speedup_1);

  bool ok = kept_ok && counter_errors == 0 && divergence == 0 && speedup_1 >= 5.0;

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Exact-equality on the deterministic counters; wall-clock fields
    // (cold_p50_ms, speedup_p50) are never compared across machines.
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key == "cold_p50_ms" || key == "speedup_p50") continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.0f != baseline %.0f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
