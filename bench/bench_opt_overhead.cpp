// §4.2.2 — optimization-space reduction (google-benchmark). The paper's
// example: a naive grid over (bid × interval)^k is ~10^16 points; decoupling
// the on-demand choice, tying F = φ(P) and searching bids logarithmically
// shrinks it to ~2000. We time the actual optimizer under: logarithmic vs
// uniform bid grids, with and without smaller-subset enumeration, and report
// model-evaluation counts alongside. BM_ThreadSweep additionally records the
// serial-vs-parallel speedup of the Level-2 enumeration (the plan itself is
// bit-identical at every thread count — see DESIGN.md "Parallel execution").
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "profile/paper_profiles.h"
#include "sim/experiment.h"

using namespace sompi;

namespace {

const Experiment& env() {
  static const Experiment e(
      [] {
        Experiment::Options o = Experiment::defaults();
        o.runs = 1;  // the MC harness is unused here
        return o;
      }());
  return e;
}

OptimizerConfig base_config() { return env().sompi_config(); }

void run_once(benchmark::State& state, const OptimizerConfig& cfg) {
  const AppProfile bt = paper_profile("BT");
  const double deadline = env().deadline(bt, /*loose=*/true);
  const SompiOptimizer opt(&env().catalog(), &env().estimator(), cfg);
  std::size_t evals = 0;
  double cost = 0.0;
  for (auto _ : state) {
    const Plan plan = opt.optimize(bt, env().market(), deadline);
    evals = plan.model_evaluations;
    cost = plan.expected.cost_usd;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["model_evals"] = static_cast<double>(evals);
  state.counters["plan_cost_usd"] = cost;
}

void BM_LogarithmicSearch(benchmark::State& state) { run_once(state, base_config()); }

void BM_UniformGrid16(benchmark::State& state) {
  OptimizerConfig cfg = base_config();
  cfg.setup.bid_grid = BidGridKind::kUniform;
  cfg.setup.uniform_points = 16;
  run_once(state, cfg);
}

void BM_UniformGrid32(benchmark::State& state) {
  OptimizerConfig cfg = base_config();
  cfg.setup.bid_grid = BidGridKind::kUniform;
  cfg.setup.uniform_points = 32;
  run_once(state, cfg);
}

void BM_ExactSubsetSizeOnly(benchmark::State& state) {
  OptimizerConfig cfg = base_config();
  cfg.enumerate_smaller_subsets = false;  // the paper's "exactly k of K"
  run_once(state, cfg);
}

void BM_KappaSweep(benchmark::State& state) {
  OptimizerConfig cfg = base_config();
  cfg.max_groups = static_cast<int>(state.range(0));
  cfg.max_candidates = static_cast<std::size_t>(state.range(0)) + 3;
  run_once(state, cfg);
}

// Serial-vs-parallel sweep over the threads knob. Uses a slightly larger
// search space (more candidates, more bid levels) so the enumeration, not
// candidate construction, dominates. Registration order guarantees the
// threads=1 run executes first; its mean wall time seeds the speedup
// counter of the parallel runs.
double g_serial_opt_seconds = 0.0;

void BM_ThreadSweep(benchmark::State& state) {
  OptimizerConfig cfg = base_config();
  cfg.max_candidates = 10;
  cfg.setup.log_levels = 8;
  const auto threads = static_cast<unsigned>(state.range(0));
  cfg.threads = threads;
  cfg.setup.failure.threads = threads;

  const AppProfile bt = paper_profile("BT");
  const double deadline = env().deadline(bt, /*loose=*/true);
  const SompiOptimizer opt(&env().catalog(), &env().estimator(), cfg);
  std::size_t evals = 0;
  double cost = 0.0;
  double seconds = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const Plan plan = opt.optimize(bt, env().market(), deadline);
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    ++iters;
    evals = plan.model_evaluations;
    cost = plan.expected.cost_usd;
    benchmark::DoNotOptimize(plan);
  }
  const double mean_seconds = seconds / static_cast<double>(iters);
  if (threads == 1) g_serial_opt_seconds = mean_seconds;
  state.counters["model_evals"] = static_cast<double>(evals);
  state.counters["plan_cost_usd"] = cost;
  state.counters["threads"] = static_cast<double>(threads);
  if (g_serial_opt_seconds > 0.0)
    state.counters["speedup_vs_serial"] = g_serial_opt_seconds / mean_seconds;
}

}  // namespace

BENCHMARK(BM_LogarithmicSearch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniformGrid16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniformGrid32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExactSubsetSizeOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KappaSweep)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

namespace {

// Console output as usual, plus a record per run for --json (google-benchmark
// reports mean time only, so p50/p99 fall back to the mean — see
// bench_util.h).
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const double ms = run.GetAdjustedRealTime();  // all benches use kMillisecond
      results.push_back({run.benchmark_name(), static_cast<std::size_t>(run.iterations),
                         ms, ms, ms, {}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<sompi::bench::JsonResult> results;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off --json <path> (google-
// benchmark rejects flags it does not know) and emit the machine-readable
// results alongside the normal console report.
int main(int argc, char** argv) {
  const std::string json_path = sompi::bench::json_path_from_args(argc, argv);
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) sompi::bench::write_json(json_path, reporter.results);
  benchmark::Shutdown();
  return 0;
}
