// §5.2 parameter study — k: how many circle groups may run in parallel.
// The paper finds that beyond k = 4 the cost barely improves while the
// optimization overhead explodes (k = 10 cost 2× Baseline Time in search
// alone); at k = 4 the overhead stays under 1% of Baseline Time.
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Parameter study — k", "cost & optimization overhead vs group budget (BT)");

  const Experiment env;
  const AppProfile bt = paper_profile("BT");
  const double deadline = env.deadline(bt, /*loose=*/true);

  Table t("BT under varying k (deadline 1.5×)");
  t.header({"k", "norm cost", "miss", "opt evals", "opt seconds", "opt / BaselineTime"});
  for (int k : {1, 2, 3, 4, 5, 6}) {
    AdaptiveConfig ad = env.adaptive_config();
    ad.opt.max_groups = k;
    // Give larger k room to actually enumerate wider subsets.
    ad.opt.max_candidates = std::max<std::size_t>(env.sompi_config().max_candidates,
                                                  static_cast<std::size_t>(k) + 3);
    const AdaptiveEngine engine(&env.catalog(), &env.estimator(), ad);

    MonteCarloConfig mc;
    mc.runs = std::max<std::size_t>(6, env.options().runs / 2);
    mc.reserve_h = 96.0;
    mc.seed = env.options().seed ^ 0x4A;
    const MonteCarloRunner runner(&env.market(), {}, mc);
    const MonteCarloStats stats = runner.run_adaptive(engine, bt, deadline);

    // Optimization accounting from a single representative adaptive run.
    MarketReplayOracle oracle(&env.market());
    const AdaptiveResult one = engine.run(bt, oracle, 48.0, deadline);

    t.row({std::to_string(k), Table::num(stats.cost.mean / env.baseline_cost(bt), 3),
           Table::num(100.0 * stats.deadline_miss_rate, 0) + "%",
           std::to_string(one.model_evaluations), Table::num(one.optimize_seconds, 2),
           Table::num(100.0 * one.optimize_seconds / 3600.0 / env.baseline_time(bt), 4) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  bench::note("expected shape: cost improvement saturates around k = 4 while the search "
              "space (and optimization time) keeps growing; the overhead stays ≪ 1% of "
              "Baseline Time at k = 4 (§5.2).");
  return 0;
}
