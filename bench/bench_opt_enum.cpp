// Level-2 enumeration kernel benchmark (DESIGN.md "Optimizer fast path").
// Times end-to-end optimize() with the incremental branch-and-bound engine
// against the reference scan (kReference: a fresh CostModel::evaluate per
// tuple) across K ∈ {4, 8} candidate groups and two bid-grid densities, and
// reports the work counters behind the speedup: logical evaluations (the
// fingerprinted exhaustive count), evaluations actually performed, pruned
// tuples/subtrees, and ns per performed evaluation.
//
// Every case cross-checks the two engines' plans field-by-field before
// reporting — a speedup from a wrong plan is a bug, not a result.
//
//   bench_opt_enum [--json <path>] [--check <baseline.json>]
//
// --check gates the *work counters* (evaluations per optimize call) against
// a committed baseline instead of wall time: counts are deterministic at
// threads=1, so the gate is exact on any runner, while a wall-clock gate on
// shared CI hardware is noise. Regressing a fast-path count above baseline
// (+5% headroom for intentional model changes) fails the run.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "trace/market.h"

using namespace sompi;

namespace {

struct Case {
  std::string name;
  std::size_t max_candidates;  // the paper's K
  std::size_t log_levels;      // bid-grid density
};

struct Measurement {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t iters = 0;
  Plan plan;
};

OptimizerConfig engine_config(const Case& c, SearchEngine engine) {
  OptimizerConfig cfg;
  cfg.max_candidates = c.max_candidates;
  cfg.max_groups = 4;
  cfg.enumerate_smaller_subsets = true;
  cfg.setup.log_levels = c.log_levels;
  cfg.setup.failure.samples = 800;
  cfg.ratio_bins = 64;
  cfg.threads = 1;  // deterministic work counters (see --check)
  cfg.engine = engine;
  return cfg;
}

Measurement measure(const SompiOptimizer& opt, const AppProfile& app, const Market& market,
                    double deadline, std::size_t iters) {
  Measurement m;
  m.iters = iters;
  std::vector<double> samples;
  samples.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    m.plan = opt.optimize(app, market, deadline);
    samples.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count());
  }
  for (double s : samples) m.mean_ms += s;
  m.mean_ms /= static_cast<double>(samples.size());
  m.p50_ms = bench::percentile_nearest_rank(samples, 0.50);
  m.p99_ms = bench::percentile_nearest_rank(samples, 0.99);
  return m;
}

bool plans_identical(const Plan& a, const Plan& b) {
  if (std::bit_cast<std::uint64_t>(a.expected.cost_usd) !=
      std::bit_cast<std::uint64_t>(b.expected.cost_usd))
    return false;
  if (a.spot_feasible != b.spot_feasible) return false;
  if (a.model_evaluations != b.model_evaluations) return false;
  if (a.groups.size() != b.groups.size()) return false;
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    if (a.groups[i].name != b.groups[i].name) return false;
    if (std::bit_cast<std::uint64_t>(a.groups[i].bid_usd) !=
        std::bit_cast<std::uint64_t>(b.groups[i].bid_usd))
      return false;
    if (a.groups[i].f_steps != b.groups[i].f_steps) return false;
  }
  return true;
}

/// The value following `flag`, or "" when absent.
std::string arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return "";
}

/// Minimal baseline lookup: finds the record with the given name in a file
/// written by bench_util.h's write_json and returns the numeric field `key`.
/// Records are one per line, so a flat string scan is sufficient.
std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string check_path = arg_value(argc, argv, "--check");

  bench::banner("opt_enum", "Level-2 bid-tuple enumeration: incremental B&B vs reference scan");

  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator est;
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/4.0,
                      /*step_hours=*/0.25, /*seed=*/77);
  const OnDemandSelector selector(&catalog, &est);
  const AppProfile app = paper_profile("BT");
  const double deadline = selector.baseline(app).t_h * 1.5;

  const std::vector<Case> cases = {
      {"K4_L5", 4, 5}, {"K4_L8", 4, 8}, {"K8_L5", 8, 5}, {"K8_L8", 8, 8}};

  std::vector<bench::JsonResult> results;
  bool ok = true;

  std::printf("%-8s %12s %12s %12s %12s %12s %10s %10s\n", "case", "engine", "mean_ms",
              "evals_logical", "evals_done", "pruned", "ns/eval", "speedup");
  for (const Case& c : cases) {
    const SompiOptimizer ref(&catalog, &est, engine_config(c, SearchEngine::kReference));
    const SompiOptimizer fast(&catalog, &est, engine_config(c, SearchEngine::kIncremental));

    const Measurement mr = measure(ref, app, market, deadline, /*iters=*/2);
    const Measurement mf = measure(fast, app, market, deadline, /*iters=*/5);

    if (!plans_identical(mr.plan, mf.plan)) {
      std::fprintf(stderr, "FAIL %s: incremental plan differs from reference plan\n",
                   c.name.c_str());
      ok = false;
    }

    const auto& st = mf.plan.stats;
    const double ref_ns_per_eval =
        mr.mean_ms * 1e6 / static_cast<double>(mr.plan.stats.evaluations);
    const double fast_ns_per_eval = mf.mean_ms * 1e6 / static_cast<double>(st.evaluations);
    const double speedup = mr.mean_ms / mf.mean_ms;

    std::printf("%-8s %12s %12.3f %12zu %12zu %12s %10.1f %10s\n", c.name.c_str(), "reference",
                mr.mean_ms, mr.plan.model_evaluations, mr.plan.stats.evaluations, "-",
                ref_ns_per_eval, "1.00x");
    std::printf("%-8s %12s %12.3f %12zu %12zu %12zu %10.1f %9.2fx\n", c.name.c_str(),
                "incremental", mf.mean_ms, mf.plan.model_evaluations, st.evaluations,
                st.tuples_pruned, fast_ns_per_eval, speedup);

    results.push_back({c.name + "/reference", mr.iters, mr.mean_ms, mr.p50_ms, mr.p99_ms,
                       {{"model_evals", static_cast<double>(mr.plan.model_evaluations)},
                        {"evals_performed", static_cast<double>(mr.plan.stats.evaluations)},
                        {"ns_per_eval", ref_ns_per_eval}}});
    results.push_back({c.name + "/incremental", mf.iters, mf.mean_ms, mf.p50_ms, mf.p99_ms,
                       {{"model_evals", static_cast<double>(mf.plan.model_evaluations)},
                        {"evals_performed", static_cast<double>(st.evaluations)},
                        {"tuples_visited", static_cast<double>(st.tuples_visited)},
                        {"tuples_pruned", static_cast<double>(st.tuples_pruned)},
                        {"subtrees_pruned", static_cast<double>(st.subtrees_pruned)},
                        {"subsets_pruned", static_cast<double>(st.subsets_pruned)},
                        {"ns_per_eval", fast_ns_per_eval},
                        {"speedup_vs_reference", speedup}}});
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Gate the deterministic work counts, not wall time. model_evals is the
    // fingerprinted exhaustive count (must match exactly); evals_performed
    // and tuples_visited measure pruning effectiveness (+5% headroom).
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key != "model_evals" && key != "evals_performed" && key != "tuples_visited") continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        const double limit = key == "model_evals" ? *base : *base * 1.05;
        if (value > limit) {
          std::fprintf(stderr, "FAIL: %s %s = %.0f exceeds baseline %.0f (limit %.0f)\n",
                       r.name.c_str(), key.c_str(), value, *base, limit);
          ok = false;
        }
      }
    }
    if (ok) bench::note("work-count check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
