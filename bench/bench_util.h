// Shared helpers for the experiment-report binaries. Each binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the same rows/series the paper reports, normalized to the
// Baseline exactly as in §5.1.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.h"
#include "sim/experiment.h"

namespace sompi::bench {

inline void banner(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

/// "cost (±std)" cell.
inline std::string cost_cell(const MethodResult& r) {
  return Table::num(r.norm_cost, 3) + " (±" + Table::num(r.norm_cost_std, 3) + ")";
}

}  // namespace sompi::bench
