// Shared helpers for the experiment-report binaries. Each binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the same rows/series the paper reports, normalized to the
// Baseline exactly as in §5.1.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "sim/experiment.h"

namespace sompi::bench {

/// Nearest-rank percentile: the ceil(q·N)-th smallest observation
/// (1-indexed; q = 0 → the minimum). The right estimator for tail latencies
/// over small samples — the linear-interpolation percentile (common/stats.h)
/// blends the two largest observations, so p99 of N < 100 samples reports a
/// value no request actually experienced and under-reports the tail until N
/// reaches ~100. q in [0, 1].
inline double percentile_nearest_rank(std::vector<double> values, double q) {
  SOMPI_REQUIRE(!values.empty());
  SOMPI_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const auto rank = q <= 0.0 ? std::size_t{1}
                             : static_cast<std::size_t>(
                                   std::ceil(q * static_cast<double>(values.size())));
  return values[rank - 1];
}

inline void banner(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

/// "cost (±std)" cell.
inline std::string cost_cell(const MethodResult& r) {
  return Table::num(r.norm_cost, 3) + " (±" + Table::num(r.norm_cost_std, 3) + ")";
}

// --- machine-readable results (--json <path>) -------------------------------
//
// Every bench that accepts `--json <path>` appends one record per measured
// series, so the perf trajectory can be tracked across PRs by diffing files
// instead of scraping stdout. Benches without per-sample latencies (the
// google-benchmark micro-benches) report p50 = p99 = mean.

struct JsonResult {
  std::string name;
  std::size_t iters = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Optional work counters (evaluations, pruned tuples, ...), emitted as
  /// extra numeric fields of the record. Unlike the timing fields these are
  /// deterministic at threads=1, which is what makes them gateable in CI
  /// (a wall-clock gate on a shared runner is noise; a work-count gate is
  /// exact).
  std::vector<std::pair<std::string, double>> counters;
};

/// JSON string escaping for names and counter keys: quotes, backslashes and
/// control characters (corruption-class names, error-frame messages) become
/// the standard \"/\\/\uXXXX escapes instead of leaking into the file raw.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The value following "--json", or "" when the flag is absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  return "";
}

/// Writes the records as a JSON array. Names and counter keys are escaped.
inline void write_json(const std::string& path, const std::vector<JsonResult>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) throw IoError("cannot write json results to " + path);
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonResult& r = results[i];
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"iters\": %zu, \"mean_ms\": %.6f, "
                 "\"p50_ms\": %.6f, \"p99_ms\": %.6f",
                 json_escape(r.name).c_str(), r.iters, r.mean_ms, r.p50_ms, r.p99_ms);
    for (const auto& [key, value] : r.counters)
      std::fprintf(out, ", \"%s\": %.6f", json_escape(key).c_str(), value);
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("json: wrote %zu result(s) to %s\n", results.size(), path.c_str());
}

}  // namespace sompi::bench
