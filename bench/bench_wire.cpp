// Wire-serving overhead and equivalence: the RPC front end vs the in-process
// tier (DESIGN.md §15, ISSUE 10).
//
//   $ ./bench_wire [--iters N=30] [--batch B=32] [--json <path>]
//                  [--check <baseline.json>]
//
// For shards ∈ {1, 8}: a router-aware PlanClient drives a PlanServerLoop
// through a scripted request stream (distinct deadlines, repeats, a
// mid-stream epoch bump) while a 1-shard in-process oracle serves the
// identical stream — every plan that crosses the wire must be
// fingerprint-byte-identical to the oracle's (wire_divergence == 0). A
// second, spray-mode client replays the distinct keys to measure the
// misroute tax: the routed client's tier forwarding counter must be exactly
// 0, the spray client's exactly the locally computed misroute count.
//
// The latency half measures warm-hit batches (every key cached) through both
// front doors: the wire client's async submit/drain/harvest and an
// AsyncBatchService on the same tier. Acceptance gates: zero divergence at
// both shard counts, routed forwards == 0, spray forwards exact and > 0,
// and warm-hit wire p50 ≤ 1.5× the in-process batch p50 (per request,
// amortized over the batch). --check compares the deterministic counters
// (requests, solves, hits, divergence, forwards, rejects) against the
// committed baseline (bench/BENCH_wire.json) exact-equality; wall-clock
// numbers are printed and gated in-process but never compared across
// machines.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/sharded/batch.h"
#include "service/sharded/sharded_service.h"

using namespace sompi;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void gate(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

ServiceConfig fast_config() {
  ServiceConfig c;
  c.cache = {.shards = 4, .capacity = 64};
  c.max_concurrent_solves = 2;
  c.max_queued_solves = 256;
  c.opt.max_candidates = 3;
  c.opt.max_groups = 2;
  c.opt.setup.log_levels = 3;
  c.opt.setup.failure.samples = 400;
  c.opt.ratio_bins = 32;
  return c;
}

ShardedConfig tier_config(std::size_t shards) {
  ShardedConfig c;
  c.shards = shards;
  c.vnodes = 32;
  c.salt = 0xD15EA5EULL;
  c.service = fast_config();
  return c;
}

struct ShardRun {
  std::size_t shards = 0;
  std::uint64_t requests = 0;
  std::uint64_t divergence = 0;        ///< wire plans != oracle plans, bytes
  std::uint64_t routed_forwards = 0;   ///< must be exactly 0
  std::uint64_t spray_forwards = 0;    ///< measured on the spray client
  std::uint64_t spray_expected = 0;    ///< locally computed misroute count
  std::uint64_t solves = 0;
  std::uint64_t hits = 0;
  std::uint64_t duplicate_solves = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t wire_errors = 0;
  std::vector<double> wire_s;    ///< per-request warm-hit seconds, wire batch
  std::vector<double> inproc_s;  ///< same, through AsyncBatchService
};

}  // namespace

int main(int argc, char** argv) {
  int iters = 30;
  std::size_t batch_size = 32;
  std::string check_path;
  const std::string json_path = bench::json_path_from_args(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) iters = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--batch") == 0)
      batch_size = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    if (std::strcmp(argv[i], "--check") == 0) check_path = argv[i + 1];
  }

  bench::banner("WIRE", "RPC front end vs in-process tier: equivalence and warm-hit overhead");

  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0,
                                  /*step_hours=*/0.25, /*seed=*/2015);
  const double baseline_h =
      OnDemandSelector(&catalog, &est).baseline(paper_profile("BT")).t_h;
  const auto request = [&](double factor) {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h * factor;
    return r;
  };
  const std::vector<double> distinct = {1.30, 1.45, 1.60, 1.75};
  // Distinct keys, repeats for hits, then the same again across an epoch
  // bump (requests 8.. re-solve at epoch 2).
  const std::vector<double> stream = {1.30, 1.45, 1.60, 1.75, 1.30, 1.60, 1.45, 1.75,
                                      1.30, 1.45, 1.60, 1.75, 1.75, 1.30};

  std::vector<ShardRun> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    ShardRun run;
    run.shards = shards;

    // --- Equivalence: routed client vs in-process oracle, across a bump ---
    ShardedPlanService oracle(&catalog, &est, market, tier_config(1));
    ShardedPlanService tier(&catalog, &est, market, tier_config(shards));
    net::PlanServerLoop server(&tier, {});
    net::PlanClient client(&server, net::ClientMode::kRouted);

    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (i == 8) {
        const std::vector<PriceUpdate> bump = {PriceUpdate{{0, 0}, {0.021, 0.027}}};
        oracle.fanout().ingest(bump);
        tier.fanout().ingest(bump);
      }
      const PlanResponse got = client.plan(request(stream[i]));
      const PlanResponse want = oracle.serve(request(stream[i]));
      ++run.requests;
      if (got.plan == nullptr || want.plan == nullptr ||
          plan_fingerprint(*got.plan) != plan_fingerprint(*want.plan) ||
          got.epoch != want.epoch)
        ++run.divergence;
    }
    {
      const net::WireTierStats stats = server.stats();
      run.routed_forwards = stats.forwarded;
      run.solves = stats.solves;
      run.hits = stats.hits;
      run.duplicate_solves = stats.duplicate_solves;
      run.frames_rejected = stats.frames_rejected;
      run.wire_errors = stats.wire_errors;
    }

    // --- Warm-hit latency: every stream key is cached at the live epoch ---
    // Per iteration, one batch of `batch_size` requests through each front
    // door; the per-request amortized time is what a serving deployment
    // pays per plan at steady state.
    std::vector<PlanRequest> warm;
    for (std::size_t i = 0; i < batch_size; ++i)
      warm.push_back(request(distinct[i % distinct.size()]));
    AsyncBatchService inproc(&tier, {.workers = 4, .queue_capacity = 256});
    // Interleaved and paired: each iteration times one batch through each
    // front door back to back, so drift (frequency scaling, noisy
    // neighbours) hits both sides alike; the first `warmup` pairs prime
    // caches and thread pools and are not recorded.
    const int warmup = 5;
    for (int it = -warmup; it < iters; ++it) {
      const auto t_wire = Clock::now();
      (void)client.submit_batch(warm);
      client.drain();
      const std::size_t wire_done = client.harvest().size();
      const double wire_s = seconds_since(t_wire) / static_cast<double>(batch_size);

      const auto t_inproc = Clock::now();
      (void)inproc.submit_batch(warm);
      inproc.drain();
      const std::size_t inproc_done = inproc.harvest().size();
      const double inproc_s = seconds_since(t_inproc) / static_cast<double>(batch_size);

      if (wire_done != batch_size || inproc_done != batch_size) ++run.divergence;
      if (it < 0) continue;
      run.wire_s.push_back(wire_s);
      run.inproc_s.push_back(inproc_s);
    }
    inproc.stop();

    // --- Misroute tax: a spray client on a fresh identical tier ----------
    ShardedPlanService spray_tier(&catalog, &est, market, tier_config(shards));
    net::PlanServerLoop spray_server(&spray_tier, {});
    net::PlanClient spray(&spray_server, net::ClientMode::kSpray);
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      if (spray_tier.home_shard(request(distinct[i])) != i % shards) ++run.spray_expected;
      const PlanResponse got = spray.plan(request(distinct[i]));
      if (got.plan == nullptr) ++run.divergence;
    }
    run.spray_forwards = spray_server.stats().forwarded;

    runs.push_back(std::move(run));
  }

  // --- Report ---------------------------------------------------------------
  const auto p50 = [](const std::vector<double>& v) {
    return bench::percentile_nearest_rank(v, 0.50);
  };
  // The overhead gate uses the MEDIAN PAIRED ratio — wire/inproc within
  // each iteration — so a drift that shifts whole runs (both sides alike)
  // cancels instead of polluting the comparison.
  const auto paired_ratio = [&](const ShardRun& run) {
    std::vector<double> ratios;
    ratios.reserve(run.wire_s.size());
    for (std::size_t i = 0; i < run.wire_s.size() && i < run.inproc_s.size(); ++i)
      if (run.inproc_s[i] > 0.0) ratios.push_back(run.wire_s[i] / run.inproc_s[i]);
    return ratios.empty() ? 0.0 : p50(ratios);
  };
  bool ok = true;
  std::vector<bench::JsonResult> results;
  for (const ShardRun& run : runs) {
    const double wire_ms = p50(run.wire_s) * 1e3;
    const double inproc_ms = p50(run.inproc_s) * 1e3;
    const double ratio = paired_ratio(run);
    std::printf("shards %zu: wire warm-hit p50 %8.4f ms/req | in-process %8.4f ms/req"
                " | %.2fx | forwards routed %llu spray %llu/%llu | divergence %llu\n",
                run.shards, wire_ms, inproc_ms, ratio,
                static_cast<unsigned long long>(run.routed_forwards),
                static_cast<unsigned long long>(run.spray_forwards),
                static_cast<unsigned long long>(run.spray_expected),
                static_cast<unsigned long long>(run.divergence));

    const bool shard_ok = run.divergence == 0 && run.routed_forwards == 0 &&
                          run.spray_forwards == run.spray_expected &&
                          run.frames_rejected == 0 && run.wire_errors == 0 &&
                          ratio <= 1.5;
    ok = ok && shard_ok;

    const double wire_mean_ms =
        std::accumulate(run.wire_s.begin(), run.wire_s.end(), 0.0) /
        static_cast<double>(run.wire_s.size()) * 1e3;
    results.push_back(
        {"wire_shards_" + std::to_string(run.shards), run.wire_s.size(), wire_mean_ms,
         wire_ms, bench::percentile_nearest_rank(run.wire_s, 0.99) * 1e3,
         {{"requests", static_cast<double>(run.requests)},
          {"divergence", static_cast<double>(run.divergence)},
          {"routed_forwards", static_cast<double>(run.routed_forwards)},
          {"spray_forwards", static_cast<double>(run.spray_forwards)},
          {"solves", static_cast<double>(run.solves)},
          {"hits", static_cast<double>(run.hits)},
          {"duplicate_solves", static_cast<double>(run.duplicate_solves)},
          {"frames_rejected", static_cast<double>(run.frames_rejected)},
          {"wire_errors", static_cast<double>(run.wire_errors)},
          {"inproc_p50_ms", inproc_ms},
          {"wire_over_inproc", ratio}}});
  }

  bench::note("acceptance gates");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ShardRun& run = runs[i];
    std::printf("  --- shards = %zu ---\n", run.shards);
    gate("every wire-served plan is fingerprint-byte-identical to the oracle",
         run.divergence == 0);
    gate("router-aware client: tier forwarding counter is exactly 0",
         run.routed_forwards == 0);
    gate("spray client: forwarding counter equals the computed misroute count",
         run.spray_forwards == run.spray_expected &&
             (run.shards == 1 || run.spray_expected > 0));
    gate("zero codec rejects and zero wire errors on a clean stream",
         run.frames_rejected == 0 && run.wire_errors == 0);
    const double ratio = paired_ratio(run);
    std::printf("  [%s] warm-hit wire <= 1.5x in-process batch (median paired, %.2fx)\n",
                ratio <= 1.5 ? "PASS" : "FAIL", ratio);
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Exact-equality on the deterministic counters; wall-clock fields are
    // never compared across machines.
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key == "inproc_p50_ms" || key == "wire_over_inproc") continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.0f != baseline %.0f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
