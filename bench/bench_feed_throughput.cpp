// Feed-pipeline ingestion benchmark (DESIGN.md §10 "Feed pipeline").
// Streams a replayed market tail through the FeedPipeline three ways — a
// synchronous single-thread pass, the same pass with windowed re-estimation
// on every publish, and a 4-producer run through the bounded MPSC queue —
// and reports sustained ticks/s, the epoch-publication latency percentiles,
// and the deterministic pipeline counters behind them.
//
// Every run cross-checks the determinism contract before reporting: the
// queued multi-producer pass must land the exact commit digest of the
// synchronous pass — a throughput number from a wrong price matrix is a bug,
// not a result.
//
//   bench_feed_throughput [--json <path>] [--check <baseline.json>]
//                         [--min-rate <ticks_per_sec>]
//
// --check gates the *deterministic counters* (ticks per pass, committed
// steps, epochs published, gap fills) against a committed baseline exactly —
// they are pure functions of the replayed trace and the feed config, so the
// gate is exact on any runner. --min-rate additionally fails the run when
// the queued pass sustains fewer ticks/s than the floor (the acceptance
// floor is 100000; the margin on a laptop is ~50x, so the gate stays
// meaningful even on a loaded CI box).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "feed/pipeline.h"
#include "feed/tick_source.h"
#include "trace/market.h"

using namespace sompi;
using feed::FeedConfig;
using feed::FeedPipeline;
using feed::FeedStats;
using feed::ReplayTickSource;

namespace {

struct PassResult {
  double seconds = 0.0;
  FeedStats stats;
  std::uint64_t digest = 0;
  std::size_t queue_max_depth = 0;
  std::vector<double> publish_ms;  // per-epoch publication latencies
};

FeedConfig bench_config(bool estimate) {
  FeedConfig cfg;
  cfg.window_steps = 96;
  cfg.publish_every = 96;  // one publication per simulated day
  cfg.queue_capacity = 1024;
  cfg.estimate = estimate;
  cfg.estimation.samples = 256;
  cfg.estimation.horizon_steps = 64;
  return cfg;
}

PassResult run_sync(const Market& full, std::size_t visible, bool estimate) {
  MarketBoard board(full.window(0, visible));
  FeedPipeline pipe(&board, bench_config(estimate));
  const std::size_t len = full.trace({0, 0}).steps();
  ReplayTickSource source(&full, {}, visible, len - visible);

  const auto t0 = std::chrono::steady_clock::now();
  pipe.ingest(source);
  pipe.flush();
  PassResult r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.stats = pipe.stats();
  r.digest = pipe.commit_digest();
  for (const feed::PublishRecord& p : pipe.publish_log())
    r.publish_ms.push_back(p.publish_seconds * 1e3);
  return r;
}

PassResult run_mpsc(const Market& full, std::size_t visible, std::size_t producers) {
  MarketBoard board(full.window(0, visible));
  FeedPipeline pipe(&board, bench_config(/*estimate=*/false));
  const std::size_t len = full.trace({0, 0}).steps();
  const std::vector<CircleGroupSpec> all = full.catalog().all_groups();

  const auto t0 = std::chrono::steady_clock::now();
  pipe.start();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<CircleGroupSpec> mine;
      for (std::size_t g = p; g < all.size(); g += producers) mine.push_back(all[g]);
      ReplayTickSource shard(&full, mine, visible, len - visible);
      pipe.pump(shard);
    });
  }
  for (std::thread& t : threads) t.join();
  pipe.stop();
  pipe.flush();
  PassResult r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.stats = pipe.stats();
  r.digest = pipe.commit_digest();
  r.queue_max_depth = pipe.queue_stats().max_depth;
  for (const feed::PublishRecord& p : pipe.publish_log())
    r.publish_ms.push_back(p.publish_seconds * 1e3);
  return r;
}

std::string arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return "";
}

/// Minimal baseline lookup, same shape as bench_opt_enum: one record per
/// line in a write_json file, scanned as a flat string.
std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string check_path = arg_value(argc, argv, "--check");
  const std::string min_rate_arg = arg_value(argc, argv, "--min-rate");
  const double min_rate = min_rate_arg.empty() ? 0.0 : std::strtod(min_rate_arg.c_str(), nullptr);

  bench::banner("feed_throughput",
                "Streaming tick ingestion: sync vs MPSC queue, with re-estimation");

  // 60 days of 15-minute ticks across the 15 paper circle groups: the feed
  // replays everything past the 2-day primed prefix, ~83k ticks per pass.
  const Catalog catalog = paper_catalog();
  const Market full = generate_market(catalog, paper_market_profile(catalog),
                                      /*days=*/60.0, /*step_hours=*/0.25, /*seed=*/101);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = 192;
  const std::uint64_t ticks_per_pass =
      static_cast<std::uint64_t>(len - visible) * catalog.all_groups().size();

  struct Case {
    std::string name;
    std::function<PassResult()> run;
  };
  const std::vector<Case> cases = {
      {"sync/estimate_off", [&] { return run_sync(full, visible, false); }},
      {"sync/estimate_on", [&] { return run_sync(full, visible, true); }},
      {"mpsc/p4", [&] { return run_mpsc(full, visible, 4); }},
  };

  constexpr std::size_t kIters = 3;
  std::vector<bench::JsonResult> results;
  bool ok = true;
  std::uint64_t sync_digest = 0;
  double mpsc_rate = 0.0;

  std::printf("%-18s %12s %12s %12s %12s %10s %10s\n", "case", "ticks/s", "mean_ms",
              "epochs", "pub_p99_ms", "gaps", "max_depth");
  for (const Case& c : cases) {
    std::vector<double> pass_ms;
    std::vector<double> publish_ms;
    PassResult last;
    for (std::size_t i = 0; i < kIters; ++i) {
      last = c.run();
      pass_ms.push_back(last.seconds * 1e3);
      publish_ms.insert(publish_ms.end(), last.publish_ms.begin(), last.publish_ms.end());
    }
    double mean_ms = 0.0;
    for (double s : pass_ms) mean_ms += s;
    mean_ms /= static_cast<double>(pass_ms.size());
    const double rate = static_cast<double>(ticks_per_pass) / (mean_ms / 1e3);
    const double pub_p50 = bench::percentile_nearest_rank(publish_ms, 0.50);
    const double pub_p99 = bench::percentile_nearest_rank(publish_ms, 0.99);

    if (last.stats.ticks_ingested != ticks_per_pass) {
      std::fprintf(stderr, "FAIL %s: ingested %llu of %llu ticks\n", c.name.c_str(),
                   static_cast<unsigned long long>(last.stats.ticks_ingested),
                   static_cast<unsigned long long>(ticks_per_pass));
      ok = false;
    }
    if (c.name == "sync/estimate_off") sync_digest = last.digest;
    if (c.name == "mpsc/p4") {
      mpsc_rate = rate;
      if (last.digest != sync_digest) {
        std::fprintf(stderr,
                     "FAIL mpsc/p4: commit digest %016llx differs from sync %016llx\n",
                     static_cast<unsigned long long>(last.digest),
                     static_cast<unsigned long long>(sync_digest));
        ok = false;
      }
      if (last.queue_max_depth > bench_config(false).queue_capacity) {
        std::fprintf(stderr, "FAIL mpsc/p4: queue depth %zu exceeded capacity\n",
                     last.queue_max_depth);
        ok = false;
      }
    }

    std::printf("%-18s %12.0f %12.2f %12llu %12.3f %10llu %10zu\n", c.name.c_str(), rate,
                mean_ms, static_cast<unsigned long long>(last.stats.epochs_published),
                pub_p99, static_cast<unsigned long long>(last.stats.gaps_filled),
                last.queue_max_depth);

    results.push_back(
        {c.name,
         kIters,
         mean_ms,
         bench::percentile_nearest_rank(pass_ms, 0.50),
         bench::percentile_nearest_rank(pass_ms, 0.99),
         {{"ticks_per_pass", static_cast<double>(ticks_per_pass)},
          {"ticks_per_sec", rate},
          {"committed_steps", static_cast<double>(last.stats.committed_steps)},
          {"epochs_published", static_cast<double>(last.stats.epochs_published)},
          {"gaps_filled", static_cast<double>(last.stats.gaps_filled)},
          {"estimates_computed", static_cast<double>(last.stats.estimates_computed)},
          {"publish_p50_ms", pub_p50},
          {"publish_p99_ms", pub_p99},
          {"queue_max_depth", static_cast<double>(last.queue_max_depth)}}});
  }

  if (min_rate > 0.0 && mpsc_rate < min_rate) {
    std::fprintf(stderr, "FAIL: mpsc/p4 sustained %.0f ticks/s, below the %.0f floor\n",
                 mpsc_rate, min_rate);
    ok = false;
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Gate the deterministic counters exactly: they are pure functions of
    // the replayed trace and the feed config (timing fields are not gated —
    // wall clock on a shared runner is noise).
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key != "ticks_per_pass" && key != "committed_steps" &&
            key != "epochs_published" && key != "gaps_filled" &&
            key != "estimates_computed")
          continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.0f != baseline %.0f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
