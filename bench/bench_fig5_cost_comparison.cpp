// Figure 5 — normalized monetary cost comparison with the state of the art:
// On-demand / Marathe / Marathe-Opt / SOMPI over computation-intensive
// (BT, SP, LU), communication-intensive (FT, IS), IO-intensive (BTIO)
// workloads and LAMMPS at 32 and 128 processes, under loose (1.5×) and
// tight (1.05×) deadlines. All costs normalized to Baseline Cost (fastest
// on-demand tier), as in §5.1.
#include "bench_util.h"

using namespace sompi;

namespace {

void run_block(const Experiment& env, bool loose,
               const std::vector<AppProfile>& apps) {
  Table t(std::string("Normalized cost — ") + (loose ? "loose" : "tight") +
          " deadline (mean over " + std::to_string(env.options().runs) + " replays, ±std)");
  t.header({"app", "cat", "On-demand", "Marathe", "Marathe-Opt", "SOMPI", "SOMPI miss"});
  double sum_od = 0.0, sum_m = 0.0, sum_mo = 0.0, sum_s = 0.0;
  for (const AppProfile& app : apps) {
    const MethodResult od = env.eval_on_demand(app, loose);
    const MethodResult m = env.eval_marathe(app, loose, false);
    const MethodResult mo = env.eval_marathe(app, loose, true);
    const MethodResult s = env.eval_sompi(app, loose);
    t.row({app.name, category_label(app.category), bench::cost_cell(od), bench::cost_cell(m),
           bench::cost_cell(mo), bench::cost_cell(s), Table::num(100.0 * s.miss_rate, 0) + "%"});
    sum_od += od.norm_cost;
    sum_m += m.norm_cost;
    sum_mo += mo.norm_cost;
    sum_s += s.norm_cost;
  }
  const auto n = static_cast<double>(apps.size());
  t.row({"MEAN", "", Table::num(sum_od / n, 3), Table::num(sum_m / n, 3),
         Table::num(sum_mo / n, 3), Table::num(sum_s / n, 3), ""});
  std::printf("%s\n", t.render().c_str());
  std::printf("SOMPI average savings: vs On-demand %.0f%%, vs Marathe %.0f%%, "
              "vs Marathe-Opt %.0f%%\n\n",
              100.0 * (1.0 - sum_s / sum_od), 100.0 * (1.0 - sum_s / sum_m),
              100.0 * (1.0 - sum_s / sum_mo));
}

}  // namespace

int main() {
  bench::banner("Figure 5", "monetary cost vs the state of the art (Marathe et al. [30])");

  const Experiment env;
  std::vector<AppProfile> apps = paper_profiles();
  apps.push_back(lammps_profile(32));
  apps.push_back(lammps_profile(128));

  run_block(env, /*loose=*/true, apps);
  run_block(env, /*loose=*/false, apps);

  bench::note("expected shape (paper): SOMPI < Marathe-Opt < Marathe < On-demand everywhere; "
              "Marathe == Marathe-Opt for comm apps and under tight deadlines (both pick "
              "cc2.8xlarge); Marathe > Baseline for BTIO (cc2.8xlarge is I/O-starved); "
              "paper-average savings 70% / 48% / 20%.");
  return 0;
}
