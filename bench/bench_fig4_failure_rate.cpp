// Figure 4 — changing trends of the failure-rate function f_i(P, t) and the
// expected spot price S_i(P) with the bid price, for m1.small and c3.xlarge
// in us-east-1a. The paper's shape: both are sensitive to the bid but not
// uniformly — f drops steeply over a narrow bid band while S rises in jumps
// where price mass sits.
#include "bench_util.h"
#include "core/failure_model.h"
#include "trace/market.h"

using namespace sompi;

int main() {
  bench::banner("Figure 4", "failure rate f(P,t) and expected spot price S(P) vs bid");

  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/14.0, 0.25, 2014);

  for (const char* type : {"m1.small", "c3.xlarge"}) {
    const CircleGroupSpec g{catalog.type_index(type), catalog.zone_index("us-east-1a")};
    const SpotTrace& trace = market.trace(g);

    FailureEstimationConfig cfg;
    cfg.samples = 20000;
    cfg.horizon_steps = 96;  // 24 h
    const auto bids = logarithmic_bid_grid(trace.max_price(), 9);
    const FailureModel fm(trace, bids, cfg);

    Table t(std::string(type) + "@us-east-1a  (H = " + Table::num(trace.max_price(), 3) +
            " USD/h)");
    t.header({"bid", "bid/H", "S(P)", "P[fail<6h]", "P[fail<12h]", "P[fail<24h]", "MTBF(h)"});
    for (std::size_t b = 0; b < fm.bid_count(); ++b) {
      t.row({Table::num(fm.bid(b), 4), Table::num(fm.bid(b) / trace.max_price(), 3),
             Table::num(fm.expected_price(b), 4), Table::num(1.0 - fm.survival(b, 24), 3),
             Table::num(1.0 - fm.survival(b, 48), 3), Table::num(1.0 - fm.survival(b, 96), 3),
             Table::num(fm.mtbf(b) * 0.25, 1)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape: failure probability decreases monotonically in the bid and "
              "collapses once the bid clears the spike band; S(P) grows only where "
              "historical price mass lies (§4.2.2, Figure 4).");
  return 0;
}
