// §5.4.1 — accuracy of the cost model: compare E[Cost] from Formula 1
// (the decomposed expectation over the fitted failure-rate functions)
// against the Monte-Carlo trace-replay estimate, for SOMPI plans across
// workloads and deadlines. The paper: 20% of relative differences < 5%,
// 40% in 5–10%, worst 15%.
#include <cmath>

#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Accuracy A2", "Formula 1 vs Monte-Carlo replay");

  const Experiment env;
  const SompiOptimizer opt(&env.catalog(), &env.estimator(), env.sompi_config());

  MonteCarloConfig mc;
  mc.runs = std::max<std::size_t>(60, env.options().runs * 2);
  mc.reserve_h = 96.0;
  mc.seed = env.options().seed ^ 0xACC;
  const MonteCarloRunner runner(&env.market(), {}, mc);

  Table t("Model expectation vs replay mean (same-trace distribution)");
  t.header({"app", "deadline", "model E[cost]", "replay mean", "rel diff", "model E[time]",
            "replay time"});
  std::vector<double> diffs;
  for (const AppProfile& app : paper_profiles()) {
    for (const bool loose : {true, false}) {
      const double deadline = env.deadline(app, loose);
      const Plan plan = opt.optimize(app, env.market(), deadline);
      if (!plan.uses_spot()) continue;
      const MonteCarloStats stats = runner.run_plan(plan, deadline);
      const double rel =
          std::abs(stats.cost.mean - plan.expected.cost_usd) / stats.cost.mean;
      diffs.push_back(rel);
      t.row({app.name, loose ? "loose" : "tight", Table::num(plan.expected.cost_usd, 2),
             Table::num(stats.cost.mean, 2), Table::num(100.0 * rel, 1) + "%",
             Table::num(plan.expected.time_h, 1), Table::num(stats.time.mean, 1)});
    }
  }
  std::printf("%s\n", t.render().c_str());

  if (!diffs.empty()) {
    std::size_t below5 = 0, below10 = 0, below15 = 0;
    for (double d : diffs) {
      if (d < 0.05) ++below5;
      if (d < 0.10) ++below10;
      if (d < 0.15) ++below15;
    }
    const auto n = static_cast<double>(diffs.size());
    std::printf("relative differences: %.0f%% < 5%%, %.0f%% < 10%%, %.0f%% < 15%%, max %.1f%%\n",
                100.0 * below5 / n, 100.0 * below10 / n, 100.0 * below15 / n,
                100.0 * percentile(diffs, 1.0));
  }
  bench::note("expected shape (paper): most plans within ~10% and the worst near 15% — the "
              "model charges each group its own lifetime (no truncation at the winner's "
              "completion) and uses the expected sub-bid price, both mild simplifications.");
  return 0;
}
