// §5.4.1 — accuracy of the cost model: compare E[Cost] from Formula 1
// (the decomposed expectation over the fitted failure-rate functions)
// against the Monte-Carlo trace-replay estimate, for SOMPI plans across
// workloads and deadlines. The paper: 20% of relative differences < 5%,
// 40% in 5–10%, worst 15%. The replay harness runs on all cores; a probe
// at the end times one plan serial-vs-parallel and checks the stats are
// bit-identical either way (the determinism contract, DESIGN.md).
#include <chrono>
#include <cmath>

#include "bench_util.h"
#include "common/thread_pool.h"

using namespace sompi;

int main() {
  bench::banner("Accuracy A2", "Formula 1 vs Monte-Carlo replay");

  const Experiment env;
  const SompiOptimizer opt(&env.catalog(), &env.estimator(), env.sompi_config());

  MonteCarloConfig mc;
  mc.runs = std::max<std::size_t>(60, env.options().runs * 2);
  mc.reserve_h = 96.0;
  mc.seed = env.options().seed ^ 0xACC;
  mc.threads = 0;  // all cores; per-run reseeding keeps the stats bit-identical
  const MonteCarloRunner runner(&env.market(), {}, mc);

  Table t("Model expectation vs replay mean (same-trace distribution)");
  t.header({"app", "deadline", "model E[cost]", "replay mean", "rel diff", "model E[time]",
            "replay time"});
  std::vector<double> diffs;
  for (const AppProfile& app : paper_profiles()) {
    for (const bool loose : {true, false}) {
      const double deadline = env.deadline(app, loose);
      const Plan plan = opt.optimize(app, env.market(), deadline);
      if (!plan.uses_spot()) continue;
      const MonteCarloStats stats = runner.run_plan(plan, deadline);
      const double rel =
          std::abs(stats.cost.mean - plan.expected.cost_usd) / stats.cost.mean;
      diffs.push_back(rel);
      t.row({app.name, loose ? "loose" : "tight", Table::num(plan.expected.cost_usd, 2),
             Table::num(stats.cost.mean, 2), Table::num(100.0 * rel, 1) + "%",
             Table::num(plan.expected.time_h, 1), Table::num(stats.time.mean, 1)});
    }
  }
  std::printf("%s\n", t.render().c_str());

  if (!diffs.empty()) {
    std::size_t below5 = 0, below10 = 0, below15 = 0;
    for (double d : diffs) {
      if (d < 0.05) ++below5;
      if (d < 0.10) ++below10;
      if (d < 0.15) ++below15;
    }
    const auto n = static_cast<double>(diffs.size());
    std::printf("relative differences: %.0f%% < 5%%, %.0f%% < 10%%, %.0f%% < 15%%, max %.1f%%\n",
                100.0 * below5 / n, 100.0 * below10 / n, 100.0 * below15 / n,
                100.0 * percentile(diffs, 1.0));
  }
  bench::note("expected shape (paper): most plans within ~10% and the worst near 15% — the "
              "model charges each group its own lifetime (no truncation at the winner's "
              "completion) and uses the expected sub-bid price, both mild simplifications.");

  // Serial-vs-parallel probe: same seed, different thread counts, and the
  // summaries must agree to the bit before the speedup number means anything.
  {
    const AppProfile bt = paper_profile("BT");
    const double deadline = env.deadline(bt, /*loose=*/true);
    const Plan plan = opt.optimize(bt, env.market(), deadline);
    MonteCarloConfig probe = mc;
    probe.runs = std::max<std::size_t>(200, probe.runs);

    const auto timed = [&](unsigned threads) {
      probe.threads = threads;
      const MonteCarloRunner r(&env.market(), {}, probe);
      const auto t0 = std::chrono::steady_clock::now();
      const MonteCarloStats s = r.run_plan(plan, deadline);
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      return std::pair<MonteCarloStats, double>(s, dt);
    };
    const auto [serial, t1] = timed(1);
    const auto [parallel, tn] = timed(0);
    const bool identical = serial.cost.mean == parallel.cost.mean &&
                           serial.cost.stddev == parallel.cost.stddev &&
                           serial.time.mean == parallel.time.mean &&
                           serial.deadline_miss_rate == parallel.deadline_miss_rate;
    std::printf("MC harness, %zu runs: serial %.3fs, threads=%u %.3fs, speedup %.2fx, "
                "stats bit-identical: %s\n",
                probe.runs, t1, resolve_threads(0), tn, t1 / tn, identical ? "yes" : "NO");
  }
  return 0;
}
