// §5.4.1 — accuracy of the failure-rate function: train on three days of
// history, test on the following day, compare f(P, t) across a grid of
// (bid, time) points and report the distribution of relative differences.
// The paper: ~90% of relative differences below 3%, 98% below 5%.
// (Relative differences on PROBABILITIES blow up near zero, so, like the
// paper's histogram-based estimator, we evaluate where there is mass:
// points with f >= 1%.)
#include <cmath>

#include "bench_util.h"
#include "core/failure_model.h"

using namespace sompi;

int main() {
  bench::banner("Accuracy A1", "failure-rate function: train 3 days / test next day");

  const Catalog catalog = paper_catalog();
  std::vector<double> diffs;

  // Repeat over several market seeds and every circle group, as the paper
  // repeats over random four-day windows.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const Market market =
        generate_market(catalog, paper_market_profile(catalog), /*days=*/8.0, 0.25, seed);
    for (const auto& spec : catalog.all_groups()) {
      const SpotTrace& full = market.trace(spec);
      const auto day = static_cast<std::size_t>(24.0 / full.step_hours());
      const SpotTrace train = full.window(0, 3 * day);
      const SpotTrace test = full.window(3 * day, day);

      FailureEstimationConfig cfg;
      cfg.samples = 20000;
      cfg.horizon_steps = 48;
      const auto bids = logarithmic_bid_grid(train.max_price(), 6);
      const FailureModel fm_train(train, bids, cfg);
      const FailureModel fm_test(test, bids, cfg);

      for (std::size_t b = 0; b < bids.size(); ++b) {
        for (std::size_t t = 4; t <= 48; t += 4) {
          const double real = 1.0 - fm_test.survival(b, t);    // P[fail by t], test day
          const double est = 1.0 - fm_train.survival(b, t);    // estimated from training
          if (real < 0.01) continue;                           // evaluate where mass exists
          diffs.push_back(std::abs(real - est) / real);
        }
      }
    }
  }

  Table t("Distribution of relative differences |A - A'| / A");
  t.header({"threshold", "share of points"});
  for (double thr : {0.03, 0.05, 0.10, 0.20, 0.50}) {
    std::size_t below = 0;
    for (double d : diffs)
      if (d <= thr) ++below;
    t.row({"<= " + Table::num(100.0 * thr, 0) + "%",
           Table::num(100.0 * below / static_cast<double>(diffs.size()), 1) + "%"});
  }
  t.row({"points", std::to_string(diffs.size())});
  t.row({"median", Table::num(100.0 * percentile(diffs, 0.5), 1) + "%"});
  std::printf("%s\n", t.render().c_str());
  bench::note("expected shape: the bulk of the relative differences small (paper: 90% < 3%, "
              "98% < 5% on real traces; synthetic regime-switching markets carry more "
              "day-to-day sampling noise in the rare-spike tail).");
  return 0;
}
