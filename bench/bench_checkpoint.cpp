// Checkpoint micro-benchmarks (google-benchmark): coordinated save/restore
// throughput vs state size and world size — the empirical counterpart of
// the model's O_i and R_i constants.
#include <benchmark/benchmark.h>

#include "checkpoint/checkpointer.h"
#include "checkpoint/state_buffer.h"
#include "minimpi/runtime.h"

using namespace sompi;

namespace {

void BM_CoordinatedSave(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto doubles_per_rank = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    MemoryStore store;
    const mpi::RunResult r = mpi::Runtime::run(world, [&](mpi::Comm& comm) {
      Checkpointer ck(&store, "bench");
      StateWriter w;
      w.write<int>(comm.rank());
      w.write_vec(std::vector<double>(doubles_per_rank, 1.5));
      ck.save(comm, w.take());
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * world *
                          static_cast<std::int64_t>(doubles_per_rank) * 8);
}

void BM_SaveRestoreCycle(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const std::size_t doubles_per_rank = 16384;
  for (auto _ : state) {
    MemoryStore store;
    const mpi::RunResult r = mpi::Runtime::run(world, [&](mpi::Comm& comm) {
      Checkpointer ck(&store, "bench");
      StateWriter w;
      w.write_vec(std::vector<double>(doubles_per_rank, 2.5));
      ck.save(comm, w.take());
      const auto blob = ck.load_latest(comm);
      benchmark::DoNotOptimize(blob);
    });
    benchmark::DoNotOptimize(r);
  }
}

void BM_S3SimOverhead(benchmark::State& state) {
  // The accounting wrapper's overhead over the raw store.
  const std::vector<std::byte> blob(65536);
  S3Sim s3;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    s3.put(key, blob);
    benchmark::DoNotOptimize(s3.get(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * 65536);
}

}  // namespace

BENCHMARK(BM_CoordinatedSave)
    ->Args({2, 4096})
    ->Args({2, 262144})
    ->Args({8, 4096})
    ->Args({8, 262144})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SaveRestoreCycle)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S3SimOverhead)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
