// Multi-level checkpoint flush benchmark (DESIGN.md §11).
// Runs the same checkpointed mini-app twice over a deliberately slow remote
// store — once flushing synchronously inside save(), once draining the cache
// asynchronously — and reports how long the application was blocked inside
// save() in each mode. The async pass must overlap the remote upload with
// compute: its blocked-in-save time has to come in strictly below the sync
// pass, which pays every simulated remote round-trip on the critical path.
// That overlap inequality is the acceptance gate and runs on every
// invocation; it is timing-based but the margin is structural (the sync pass
// sleeps ranks × puts × kRemotePutDelay on the save path, the async pass
// sleeps none of it), so it holds on any loaded runner.
//
//   bench_multilevel_ckpt [--json <path>] [--check <baseline.json>]
//
// --check additionally gates the deterministic counters (saves, flushes,
// bytes before/after compression, remote puts, compression CPU) against the
// committed baseline exactly — they are pure functions of the workload
// constants, so the gate is exact on any machine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "checkpoint/multilevel.h"
#include "checkpoint/storage.h"
#include "common/rng.h"
#include "minimpi/runtime.h"

using namespace sompi;

namespace {

constexpr int kRanks = 4;
constexpr int kSaves = 6;
constexpr std::size_t kBlobLen = 64 * 1024;
constexpr auto kRemotePutDelay = std::chrono::milliseconds(3);
constexpr auto kComputeDelay = std::chrono::milliseconds(2);

/// A remote store with simulated upload latency: every put sleeps before
/// delegating to the wrapped S3-sim, so a synchronous flush provably stalls
/// the save path while an async one hides the stall behind compute.
class SlowStore final : public StorageBackend {
 public:
  explicit SlowStore(StorageBackend* inner) : inner_(inner) {}

  void put(const std::string& key, std::span<const std::byte> bytes) override {
    std::this_thread::sleep_for(kRemotePutDelay);
    inner_->put(key, bytes);
  }
  std::optional<std::vector<std::byte>> get(const std::string& key) const override {
    return inner_->get(key);
  }
  bool exists(const std::string& key) const override { return inner_->exists(key); }
  std::vector<std::string> list(const std::string& prefix) const override {
    return inner_->list(prefix);
  }
  void remove(const std::string& key) override { inner_->remove(key); }
  std::uint64_t bytes_stored() const override { return inner_->bytes_stored(); }

 private:
  StorageBackend* inner_;
};

/// Deterministic, RLE-friendly rank state: runs interleaved with noise.
std::vector<std::byte> rank_blob(int version, int rank) {
  std::vector<std::byte> b(kBlobLen);
  Rng rng(0x6E43ull + static_cast<std::uint64_t>(version) * 131u +
          static_cast<std::uint64_t>(rank));
  std::size_t i = 0;
  while (i < b.size()) {
    if (rng.bernoulli(0.5)) {
      const std::byte v{static_cast<unsigned char>(rng.uniform_index(256))};
      const std::size_t n = std::min(b.size() - i, 1 + rng.uniform_index(64));
      for (std::size_t j = 0; j < n; ++j) b[i++] = v;
    } else {
      b[i++] = std::byte{static_cast<unsigned char>(rng.uniform_index(256))};
    }
  }
  return b;
}

struct PassResult {
  double pass_ms = 0.0;  ///< whole mpi run, wall clock
  double save_ms = 0.0;  ///< rank 0's cumulative time blocked inside save()
  FlushStats flush;
  std::uint64_t remote_puts = 0;
  std::uint64_t remote_bytes = 0;
};

PassResult run_pass(bool async_flush) {
  S3Sim s3;
  SlowStore remote(&s3);
  MemoryStore cache;
  MultiLevelConfig config;
  config.cache = &cache;
  config.redundancy = RedundancyScheme::kXor;
  config.compression.mode = CompressionMode::kRle;
  config.compression.cpu_seconds_per_gb = 8.0;
  config.async_flush = async_flush;

  PassResult r;
  {
    MultiLevelCheckpointer ml(&remote, "bench", config);
    const auto t0 = std::chrono::steady_clock::now();
    const mpi::RunResult run = mpi::Runtime::run(kRanks, [&](mpi::Comm& comm) {
      for (int version = 0; version < kSaves; ++version) {
        std::this_thread::sleep_for(kComputeDelay);  // the app computing
        const auto blob = rank_blob(version, comm.rank());
        const auto s0 = std::chrono::steady_clock::now();
        (void)ml.save(comm, blob);
        if (comm.rank() == 0)
          r.save_ms +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() - s0).count() *
              1e3;
      }
    });
    ml.wait_flush();
    r.pass_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() * 1e3;
    if (!run.completed) {
      std::fprintf(stderr, "FAIL: checkpointed mini-app did not complete\n");
      std::exit(2);
    }
    r.flush = ml.flush_stats();
  }
  r.remote_puts = s3.put_count();
  r.remote_bytes = s3.bytes_uploaded();
  return r;
}

std::string arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return "";
}

/// Same flat-scan baseline lookup as bench_feed_throughput.
std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string check_path = arg_value(argc, argv, "--check");

  bench::banner("multilevel_ckpt",
                "Cache+XOR+S3 checkpoint hierarchy: sync vs async flush over a slow remote");

  bool ok = true;
  std::vector<bench::JsonResult> results;
  std::printf("%-8s %10s %12s %10s %12s %12s %12s\n", "case", "pass_ms", "in_save_ms",
              "flushes", "raw_bytes", "wire_bytes", "remote_puts");

  PassResult sync;
  PassResult async;
  for (const bool is_async : {false, true}) {
    const PassResult r = run_pass(is_async);
    (is_async ? async : sync) = r;
    const char* name = is_async ? "async" : "sync";
    std::printf("%-8s %10.2f %12.2f %10llu %12llu %12llu %12llu\n", name, r.pass_ms,
                r.save_ms, static_cast<unsigned long long>(r.flush.flushes_completed),
                static_cast<unsigned long long>(r.flush.bytes_before_compression),
                static_cast<unsigned long long>(r.flush.bytes_flushed),
                static_cast<unsigned long long>(r.remote_puts));
    results.push_back(
        {name,
         1,
         r.pass_ms,
         r.pass_ms,
         r.pass_ms,
         {{"in_save_ms", r.save_ms},
          {"saves", static_cast<double>(kSaves)},
          {"flushes_completed", static_cast<double>(r.flush.flushes_completed)},
          {"bytes_before_compression", static_cast<double>(r.flush.bytes_before_compression)},
          {"bytes_flushed", static_cast<double>(r.flush.bytes_flushed)},
          {"remote_puts", static_cast<double>(r.remote_puts)},
          {"compression_cpu_us", r.flush.compression_cpu_seconds * 1e6}}});
  }

  // Both passes flush identical bytes: the async drain changes when the
  // upload happens, never what is uploaded.
  if (async.remote_bytes != sync.remote_bytes || async.remote_puts != sync.remote_puts) {
    std::fprintf(stderr, "FAIL: async flushed %llu bytes / %llu puts vs sync %llu / %llu\n",
                 static_cast<unsigned long long>(async.remote_bytes),
                 static_cast<unsigned long long>(async.remote_puts),
                 static_cast<unsigned long long>(sync.remote_bytes),
                 static_cast<unsigned long long>(sync.remote_puts));
    ok = false;
  }
  // The acceptance gate: async flushing must take the remote upload off the
  // save path. The sync pass is blocked in save() for every simulated remote
  // round-trip; the async pass only pays the cache commit.
  if (async.save_ms >= sync.save_ms) {
    std::fprintf(stderr,
                 "FAIL: async pass blocked %.2f ms in save(), not below sync's %.2f ms — "
                 "the flush is not overlapping compute\n",
                 async.save_ms, sync.save_ms);
    ok = false;
  } else {
    bench::note("async flush overlap: blocked-in-save " +
                std::to_string(async.save_ms) + " ms vs sync " +
                std::to_string(sync.save_ms) + " ms");
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Exact gate on the deterministic counters only (timing is not gated).
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key == "in_save_ms") continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.6f != baseline %.6f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
