// Substrate micro-benchmarks (google-benchmark): mini-MPI point-to-point
// and collective performance across world sizes and payloads. Sanity for
// the runtime every kernel and checkpoint runs on.
#include <benchmark/benchmark.h>

#include "minimpi/runtime.h"

using namespace sompi::mpi;

namespace {

void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    const RunResult r = Runtime::run(2, [&](Comm& comm) {
      std::vector<std::byte> payload(bytes);
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send_bytes(1, 1, payload);
          benchmark::DoNotOptimize(comm.recv_bytes(1, 2));
        } else {
          benchmark::DoNotOptimize(comm.recv_bytes(0, 1));
          comm.send_bytes(0, 2, payload);
        }
      }
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * rounds * 2 * static_cast<std::int64_t>(bytes));
}

void BM_Barrier(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    const RunResult r = Runtime::run(world, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = rounds;
}

void BM_Bcast(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int rounds = 32;
  for (auto _ : state) {
    const RunResult r = Runtime::run(world, [&](Comm& comm) {
      std::vector<double> data(1024);
      for (int i = 0; i < rounds; ++i) comm.bcast(data, 0);
    });
    benchmark::DoNotOptimize(r);
  }
}

void BM_Allreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    const RunResult r = Runtime::run(world, [&](Comm& comm) {
      double acc = comm.rank();
      for (int i = 0; i < rounds; ++i)
        acc = comm.allreduce(acc, ReduceOp::kSum) / world;
      benchmark::DoNotOptimize(acc);
    });
    benchmark::DoNotOptimize(r);
  }
}

void BM_Alltoall(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const int rounds = 16;
  for (auto _ : state) {
    const RunResult r = Runtime::run(world, [&](Comm& comm) {
      std::vector<std::vector<double>> bufs(static_cast<std::size_t>(world),
                                            std::vector<double>(256));
      for (int i = 0; i < rounds; ++i) benchmark::DoNotOptimize(comm.alltoall(bufs));
    });
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(262144)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bcast)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Alltoall)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
