// Closed-loop load generator for the PlanService (the serving-layer
// counterpart of bench_opt_overhead's solver timings).
//
//   $ ./bench_service_load [--threads T=4] [--iters N=500] [--requests R=8]
//                          [--fresh-every K=200] [--json <path>]
//
// Three phases:
//   1. UNCACHED — solve R distinct requests once each, optimizer only: the
//      baseline cost of planning without the serving layer.
//   2. WARM     — T closed-loop threads × N iterations over the same R
//      requests (every Kth request is a never-seen-before deadline, so the
//      mix keeps a trickle of compulsory misses). Reports throughput, hit
//      rate, and p50/p99 per-request latency.
//   3. BURST    — 16 threads fire one identical request at a fresh epoch;
//      the dedup counters must show exactly one solve.
//
// Acceptance gates printed at the end (ISSUE 2): warm throughput ≥ 50× the
// uncached solve rate, warm hit rate ≥ 90%, burst solves == 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/plan_service.h"

using namespace sompi;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Args {
  unsigned threads = 4;
  int iters = 500;
  int requests = 8;
  int fresh_every = 200;
  std::string json_path;
};

Args parse_args(int argc, char** argv) {
  Args a;
  a.json_path = bench::json_path_from_args(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") a.threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--iters") a.iters = std::atoi(argv[i + 1]);
    if (arg == "--requests") a.requests = std::atoi(argv[i + 1]);
    if (arg == "--fresh-every") a.fresh_every = std::atoi(argv[i + 1]);
  }
  return a;
}

void gate(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  bench::banner("SERVICE-LOAD",
                "PlanService under closed-loop concurrent load (epoch cache + single-flight)");

  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0,
                                  /*step_hours=*/0.25, /*seed=*/2014);
  MarketBoard board(market);

  ServiceConfig cfg;
  cfg.cache = {.shards = 8, .capacity = 4096};
  cfg.max_concurrent_solves = std::max<std::size_t>(2, args.threads);
  cfg.max_queued_solves = 1024;
  cfg.opt.max_candidates = 4;
  cfg.opt.setup.log_levels = 4;
  cfg.opt.setup.failure.samples = 400;
  cfg.opt.ratio_bins = 48;
  PlanService service(&catalog, &est, &board, cfg);

  const AppProfile bt = paper_profile("BT");
  const double baseline_h = OnDemandSelector(&catalog, &est).baseline(bt).t_h;
  const auto request_for = [&](int which, double jitter = 0.0) {
    PlanRequest r;
    r.app = bt;
    r.deadline_h = baseline_h * (1.4 + 0.1 * which) + jitter;
    return r;
  };

  // --- Phase 1: uncached solves ------------------------------------------
  const MarketSnapshot world = board.snapshot();
  std::vector<double> solve_lat;
  for (int i = 0; i < args.requests; ++i) {
    const auto t0 = Clock::now();
    const Plan plan = service.solve(canonicalized(request_for(i)), *world.market);
    solve_lat.push_back(seconds_since(t0));
    if (plan.model_evaluations == 0) std::printf("warning: degenerate solve\n");
  }
  const double solve_mean_s = std::accumulate(solve_lat.begin(), solve_lat.end(), 0.0) /
                              static_cast<double>(solve_lat.size());
  const double uncached_rps = 1.0 / solve_mean_s;
  std::printf("uncached: %d solves, mean %.2f ms  →  %.1f plans/s\n", args.requests,
              solve_mean_s * 1e3, uncached_rps);

  // --- Phase 2: warm-cache closed loop -----------------------------------
  const ServiceStats before = service.stats();
  std::vector<std::vector<double>> lat(args.threads);
  std::atomic<int> fresh_counter{0};
  const auto t_warm = Clock::now();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < args.threads; ++t) {
    threads.emplace_back([&, t] {
      lat[t].reserve(static_cast<std::size_t>(args.iters));
      for (int i = 0; i < args.iters; ++i) {
        PlanRequest r;
        const int k = static_cast<int>(t) * args.iters + i;
        if (args.fresh_every > 0 && k % args.fresh_every == args.fresh_every - 1) {
          // A never-repeated deadline: a compulsory miss in the mix.
          const int unique = fresh_counter.fetch_add(1);
          r = request_for(0, /*jitter=*/1e-4 * (unique + 1));
        } else {
          r = request_for(k % args.requests);
        }
        const auto t0 = Clock::now();
        const PlanResponse response = service.serve(r);
        lat[t].push_back(seconds_since(t0));
        if (response.outcome == PlanOutcome::kShed) std::printf("warning: shed under warm load\n");
      }
    });
  }
  for (auto& th : threads) th.join();
  const double warm_wall_s = seconds_since(t_warm);
  const ServiceStats after = service.stats();

  std::vector<double> all_lat;
  for (const auto& v : lat) all_lat.insert(all_lat.end(), v.begin(), v.end());
  const std::size_t ops = all_lat.size();
  const double warm_rps = static_cast<double>(ops) / warm_wall_s;
  const double warm_mean_ms =
      std::accumulate(all_lat.begin(), all_lat.end(), 0.0) / static_cast<double>(ops) * 1e3;
  const double p50_ms = bench::percentile_nearest_rank(all_lat, 0.50) * 1e3;
  const double p99_ms = bench::percentile_nearest_rank(all_lat, 0.99) * 1e3;
  const std::uint64_t warm_requests = after.requests - before.requests;
  const double hit_rate =
      static_cast<double>(after.hits - before.hits) / static_cast<double>(warm_requests);
  const double speedup = warm_rps / uncached_rps;

  std::printf("warm:     %zu ops over %u threads in %.2f s  →  %.0f plans/s (%.0fx uncached)\n",
              ops, args.threads, warm_wall_s, warm_rps, speedup);
  std::printf("          hit rate %.1f%%  |  latency mean %.3f ms  p50 %.3f ms  p99 %.3f ms\n",
              hit_rate * 100.0, warm_mean_ms, p50_ms, p99_ms);
  std::printf("          solves %llu  joins %llu  sheds %llu  stale-evicted %llu\n",
              static_cast<unsigned long long>(after.solves - before.solves),
              static_cast<unsigned long long>(after.dedup_joins - before.dedup_joins),
              static_cast<unsigned long long>(after.sheds - before.sheds),
              static_cast<unsigned long long>(after.stale_evicted));

  // --- Phase 3: identical burst at a fresh epoch --------------------------
  board.ingest({});  // bump: nothing is cached for the new epoch
  const ServiceStats pre_burst = service.stats();
  constexpr int kBurst = 16;
  std::vector<std::thread> burst;
  for (int t = 0; t < kBurst; ++t)
    burst.emplace_back([&] { (void)service.serve(request_for(0)); });
  for (auto& th : burst) th.join();
  const ServiceStats post_burst = service.stats();
  const std::uint64_t burst_solves = post_burst.solves - pre_burst.solves;
  const std::uint64_t burst_joins = post_burst.dedup_joins - pre_burst.dedup_joins;
  std::printf("burst:    %d identical requests at a fresh epoch → %llu solve(s), %llu join(s)\n",
              kBurst, static_cast<unsigned long long>(burst_solves),
              static_cast<unsigned long long>(burst_joins));

  bench::note("acceptance gates");
  gate("warm throughput >= 50x uncached", speedup >= 50.0);
  gate("hit rate >= 90% under the repeated-request mix", hit_rate >= 0.90);
  gate("exactly one solve per identical burst", burst_solves == 1);

  if (!args.json_path.empty()) {
    std::vector<bench::JsonResult> results;
    results.push_back({"uncached_solve", solve_lat.size(), solve_mean_s * 1e3,
                       bench::percentile_nearest_rank(solve_lat, 0.50) * 1e3,
                       bench::percentile_nearest_rank(solve_lat, 0.99) * 1e3, {}});
    results.push_back({"warm_serve", ops, warm_mean_ms, p50_ms, p99_ms, {}});
    bench::write_json(args.json_path, results);
  }

  const bool ok = speedup >= 50.0 && hit_rate >= 0.90 && burst_solves == 1;
  return ok ? 0 : 1;
}
