// Closed-loop load generator for the PlanService (the serving-layer
// counterpart of bench_opt_overhead's solver timings).
//
//   $ ./bench_service_load [--threads T=4] [--iters N=500] [--requests R=8]
//                          [--fresh-every K=200] [--json <path>]
//                          [--shards N] [--check <baseline.json>]
//
// Default (single-service) mode, three phases:
//   1. UNCACHED — solve R distinct requests once each, optimizer only: the
//      baseline cost of planning without the serving layer.
//   2. WARM     — T closed-loop threads × N iterations over the same R
//      requests (every Kth request is a never-seen-before deadline, so the
//      mix keeps a trickle of compulsory misses). Reports throughput, hit
//      rate, and p50/p99 per-request latency.
//   3. BURST    — 16 threads fire one identical request at a fresh epoch;
//      the dedup counters must show exactly one solve.
//
// Acceptance gates printed at the end (ISSUE 2): warm throughput ≥ 50× the
// uncached solve rate, warm hit rate ≥ 90%, burst solves == 1.
//
// --shards N switches to the sharded-tier mode (ISSUE 8): a pinned
// solve-bound workload of unique requests runs through a sequential 1-shard
// oracle, then concurrently through a 1-shard and an N-shard tier, then a
// cross-shard spray burst. Gates: every concurrent response bit-matches the
// oracle fingerprint; unique solves, conservation and the dedup ledger are
// exact; the burst solves once; and N-shard throughput clears a
// hardware-aware floor of min(N, threads, cores) × 1-shard throughput × 0.3
// (wall clock is never gated tighter than that — shared runners are noisy).
// --check additionally compares the deterministic counters against a
// committed baseline (bench/BENCH_sharded_service.json), exact-equality.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/plan_service.h"
#include "service/sharded/batch.h"
#include "service/sharded/sharded_service.h"

using namespace sompi;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Args {
  unsigned threads = 4;
  int iters = 500;
  int requests = 8;
  int fresh_every = 200;
  int shards = 0;  // 0 = legacy single-service mode
  std::string json_path;
  std::string check_path;
};

Args parse_args(int argc, char** argv) {
  Args a;
  a.json_path = bench::json_path_from_args(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") a.threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--iters") a.iters = std::atoi(argv[i + 1]);
    if (arg == "--requests") a.requests = std::atoi(argv[i + 1]);
    if (arg == "--fresh-every") a.fresh_every = std::atoi(argv[i + 1]);
    if (arg == "--shards") a.shards = std::atoi(argv[i + 1]);
    if (arg == "--check") a.check_path = argv[i + 1];
  }
  return a;
}

void gate(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

// Flat-JSON field extractor, same idiom as bench_feed_throughput's --check:
// the bench JSON is one object per record, so substring scoping suffices.
std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

// ---------------------------------------------------------------------------
// Sharded-tier mode.

int run_sharded(const Args& args) {
  bench::banner("SERVICE-LOAD/SHARDED",
                "N-shard plan tier vs single-shard oracle: equivalence + scaling");

  // The workload is PINNED (not derived from --iters/--requests): the
  // committed baseline gates its deterministic counters exactly, so every
  // invocation must run the identical request set.
  constexpr int kUnique = 48;
  constexpr int kBurst = 16;
  const std::size_t shards = static_cast<std::size_t>(std::max(args.shards, 1));

  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0,
                                  /*step_hours=*/0.25, /*seed=*/2014);

  const AppProfile bt = paper_profile("BT");
  const double baseline_h = OnDemandSelector(&catalog, &est).baseline(bt).t_h;
  const auto request_for = [&](int which) {
    PlanRequest r;
    r.app = bt;
    // Every request unique: the scaling phases are deliberately solve-bound
    // (one solve slot per shard), so shard count is the parallelism axis.
    r.deadline_h = baseline_h * (1.4 + 0.01 * which);
    return r;
  };

  const auto tier_config = [&](std::size_t n) {
    ShardedConfig c;
    c.shards = n;
    c.vnodes = 64;
    c.salt = 0x5CA1EDULL;
    c.service.cache = {.shards = 4, .capacity = 256};
    c.service.max_concurrent_solves = 1;  // solve-bound by construction
    c.service.max_queued_solves = 4096;   // nothing sheds
    // Small solves so the pinned workload stays fast; what matters is that
    // they dominate the per-request cost.
    c.service.opt.max_candidates = 2;
    c.service.opt.max_groups = 1;
    c.service.opt.setup.log_levels = 2;
    c.service.opt.setup.failure.samples = 200;
    c.service.opt.ratio_bins = 16;
    return c;
  };

  // --- Phase 1: sequential single-shard oracle ----------------------------
  std::map<std::string, std::string> oracle_fp;  // canonical key → fingerprint
  double oracle_wall_s = 0.0;
  {
    ShardedPlanService oracle(&catalog, &est, market, tier_config(1));
    const auto t0 = Clock::now();
    for (int i = 0; i < kUnique; ++i) {
      const PlanRequest r = request_for(i);
      const PlanResponse response = oracle.serve(r);
      if (response.plan == nullptr) {
        std::fprintf(stderr, "FAIL: oracle shed a request\n");
        return 1;
      }
      oracle_fp[canonical_key(canonicalized(r))] = plan_fingerprint(*response.plan);
    }
    oracle_wall_s = seconds_since(t0);
    if (oracle.stats().total.solves != static_cast<std::uint64_t>(kUnique)) {
      std::fprintf(stderr, "FAIL: oracle did not solve every unique request\n");
      return 1;
    }
  }
  std::printf("oracle:   %d sequential solves in %.2f s (1 shard)\n", kUnique, oracle_wall_s);

  // One concurrent closed-loop pass over the workload: T threads drain a
  // shared index, each request sprayed round-robin across the tier's shards.
  std::atomic<std::uint64_t> fp_mismatches{0};
  const auto run_pass = [&](ShardedPlanService& tier) {
    std::atomic<int> next{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < std::max(1u, args.threads); ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kUnique) return;
          const PlanRequest r = request_for(i);
          const PlanResponse response =
              tier.serve_on(static_cast<std::size_t>(i) % tier.shard_count(), r);
          if (response.plan == nullptr ||
              plan_fingerprint(*response.plan) != oracle_fp[canonical_key(canonicalized(r))])
            fp_mismatches.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    return seconds_since(t0);
  };

  // --- Phase 2: concurrent, 1 shard vs N shards ---------------------------
  ShardedPlanService one(&catalog, &est, market, tier_config(1));
  const double wall_1 = run_pass(one);
  const double rps_1 = kUnique / wall_1;

  ShardedPlanService tier(&catalog, &est, market, tier_config(shards));
  const double wall_n = run_pass(tier);
  const double rps_n = kUnique / wall_n;
  std::printf("scale:    1 shard %.0f plans/s  |  %zu shards %.0f plans/s  (%.2fx)\n", rps_1,
              shards, rps_n, rps_n / rps_1);

  // --- Phase 3: identical cross-shard burst -------------------------------
  const ShardedStats pre_burst = tier.stats();
  {
    std::vector<std::thread> burst;
    for (int t = 0; t < kBurst; ++t)
      burst.emplace_back([&, t] {
        (void)tier.serve_on(static_cast<std::size_t>(t) % tier.shard_count(),
                            request_for(kUnique));  // a key no phase has seen
      });
    for (auto& th : burst) th.join();
  }
  const ShardedStats post_burst = tier.stats();
  const std::uint64_t burst_solves = post_burst.total.solves - pre_burst.total.solves;
  std::printf("burst:    %d identical sprayed requests → %llu solve(s)\n", kBurst,
              static_cast<unsigned long long>(burst_solves));

  // --- Phase 4: epoch churn — warm re-plans vs the cold oracle -------------
  // Aggregate counters for the solve-economy gates are snapshotted BEFORE the
  // churn, which deliberately adds re-solves.
  const ShardedStats stats = tier.stats();
  std::uint64_t churn_divergence = 0;
  constexpr int kChurn = 8;
  for (int c = 0; c < kChurn; ++c) {
    // Alternate real single-group deltas with forced (empty) bumps; every
    // served key was solved in phase 2, so each serve is a warm re-plan.
    if (c % 2 == 0)
      tier.fanout().ingest({PriceUpdate{{0, 0}, {0.05 + 0.001 * c}}});
    else
      tier.fanout().ingest({});
    const PlanRequest r = request_for(c % 4);
    const std::size_t home = tier.home_shard(r);
    const MarketSnapshot snap = tier.board(home).snapshot();
    const PlanResponse warm = tier.serve(r);
    if (warm.plan == nullptr ||
        plan_fingerprint(*warm.plan) !=
            plan_fingerprint(tier.shard(home).solve(canonicalized(r), *snap.market)))
      ++churn_divergence;
  }
  const std::uint64_t churn_replans =
      tier.stats().total.replan_count - stats.total.replan_count;
  std::printf("churn:    %d epoch bumps → %llu warm re-plan(s), %llu divergence(s)\n", kChurn,
              static_cast<unsigned long long>(churn_replans),
              static_cast<unsigned long long>(churn_divergence));

  // --- Gates ---------------------------------------------------------------
  std::uint64_t sum_requests = 0;
  for (const ServiceStats& shard : stats.per_shard) sum_requests += shard.requests;
  const bool conserve =
      sum_requests == stats.total.requests &&
      stats.total.hits + stats.total.solves + stats.total.dedup_joins + stats.total.sheds ==
          stats.total.requests &&
      stats.routed + stats.sprayed == stats.total.requests;
  // Hardware-aware scaling floor: the tier is solve-bound with one solve
  // slot per shard, so the ideal speedup is min(shards, threads, cores);
  // demand 30% of it — loose enough for noisy shared runners, tight enough
  // to catch accidental serialization (a global lock would pin this to ~1x).
  const double cores = std::max(1u, std::thread::hardware_concurrency());
  const double expected =
      std::min({static_cast<double>(shards), static_cast<double>(std::max(1u, args.threads)),
                cores});
  const bool scaling_ok = rps_n >= 0.3 * expected * rps_1;

  bench::note("acceptance gates");
  gate("every concurrent plan bit-matches the 1-shard oracle", fp_mismatches.load() == 0);
  gate("unique solves == unique requests (exactly-once economy)",
       stats.total.solves == static_cast<std::uint64_t>(kUnique) + burst_solves);
  gate("zero duplicate solves in the tier ledger", stats.duplicate_solves == 0);
  gate("per-shard counters conserve the aggregate", conserve);
  gate("zero sheds under the roomy queue", stats.total.sheds == 0);
  gate("exactly one solve per cross-shard identical burst", burst_solves == 1);
  gate("epoch churn re-plans warm (replan_count > 0)", churn_replans > 0);
  gate("zero warm/cold fingerprint divergence under epoch churn", churn_divergence == 0);
  std::printf("  [%s] N-shard throughput clears the hw-aware floor "
              "(%.0f >= 0.3 * %.0f * %.0f)\n",
              scaling_ok ? "PASS" : "FAIL", rps_n, expected, rps_1);

  bool ok = fp_mismatches.load() == 0 && stats.duplicate_solves == 0 && conserve &&
            stats.total.sheds == 0 && burst_solves == 1 && scaling_ok &&
            stats.total.solves == static_cast<std::uint64_t>(kUnique) + burst_solves &&
            churn_replans > 0 && churn_divergence == 0;

  std::vector<bench::JsonResult> results;
  results.push_back({"sharded_oracle", static_cast<std::size_t>(kUnique),
                     oracle_wall_s / kUnique * 1e3, 0.0, 0.0,
                     {{"unique_requests", kUnique}}});
  results.push_back({"sharded_scale", static_cast<std::size_t>(kUnique),
                     wall_n / kUnique * 1e3, 0.0, 0.0,
                     {{"shards", static_cast<double>(shards)},
                      {"requests", static_cast<double>(stats.total.requests)},
                      {"unique_solves", static_cast<double>(stats.total.solves - burst_solves)},
                      {"burst_solves", static_cast<double>(burst_solves)},
                      {"sheds", static_cast<double>(stats.total.sheds)},
                      {"churn_replans", static_cast<double>(churn_replans)},
                      {"churn_divergence", static_cast<double>(churn_divergence)},
                      {"rps_1shard", rps_1},
                      {"rps_nshard", rps_n}}});

  if (!args.check_path.empty()) {
    std::ifstream in(args.check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", args.check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Exact-equality gate on the DETERMINISTIC counters only (rps_* are wall
    // clock — never gated against a baseline recorded on another machine).
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        if (key != "unique_requests" && key != "shards" && key != "requests" &&
            key != "unique_solves" && key != "burst_solves" && key != "sheds" &&
            key != "churn_replans" && key != "churn_divergence")
          continue;
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", args.check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.0f != baseline %.0f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + args.check_path);
  }

  if (!args.json_path.empty()) bench::write_json(args.json_path, results);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.shards > 0) return run_sharded(args);
  bench::banner("SERVICE-LOAD",
                "PlanService under closed-loop concurrent load (epoch cache + single-flight)");

  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0,
                                  /*step_hours=*/0.25, /*seed=*/2014);
  MarketBoard board(market);

  ServiceConfig cfg;
  cfg.cache = {.shards = 8, .capacity = 4096};
  cfg.max_concurrent_solves = std::max<std::size_t>(2, args.threads);
  cfg.max_queued_solves = 1024;
  cfg.opt.max_candidates = 4;
  cfg.opt.setup.log_levels = 4;
  cfg.opt.setup.failure.samples = 400;
  cfg.opt.ratio_bins = 48;
  PlanService service(&catalog, &est, &board, cfg);

  const AppProfile bt = paper_profile("BT");
  const double baseline_h = OnDemandSelector(&catalog, &est).baseline(bt).t_h;
  const auto request_for = [&](int which, double jitter = 0.0) {
    PlanRequest r;
    r.app = bt;
    r.deadline_h = baseline_h * (1.4 + 0.1 * which) + jitter;
    return r;
  };

  // --- Phase 1: uncached solves ------------------------------------------
  const MarketSnapshot world = board.snapshot();
  std::vector<double> solve_lat;
  for (int i = 0; i < args.requests; ++i) {
    const auto t0 = Clock::now();
    const Plan plan = service.solve(canonicalized(request_for(i)), *world.market);
    solve_lat.push_back(seconds_since(t0));
    if (plan.model_evaluations == 0) std::printf("warning: degenerate solve\n");
  }
  const double solve_mean_s = std::accumulate(solve_lat.begin(), solve_lat.end(), 0.0) /
                              static_cast<double>(solve_lat.size());
  const double uncached_rps = 1.0 / solve_mean_s;
  std::printf("uncached: %d solves, mean %.2f ms  →  %.1f plans/s\n", args.requests,
              solve_mean_s * 1e3, uncached_rps);

  // --- Phase 2: warm-cache closed loop -----------------------------------
  const ServiceStats before = service.stats();
  std::vector<std::vector<double>> lat(args.threads);
  std::atomic<int> fresh_counter{0};
  const auto t_warm = Clock::now();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < args.threads; ++t) {
    threads.emplace_back([&, t] {
      lat[t].reserve(static_cast<std::size_t>(args.iters));
      for (int i = 0; i < args.iters; ++i) {
        PlanRequest r;
        const int k = static_cast<int>(t) * args.iters + i;
        if (args.fresh_every > 0 && k % args.fresh_every == args.fresh_every - 1) {
          // A never-repeated deadline: a compulsory miss in the mix.
          const int unique = fresh_counter.fetch_add(1);
          r = request_for(0, /*jitter=*/1e-4 * (unique + 1));
        } else {
          r = request_for(k % args.requests);
        }
        const auto t0 = Clock::now();
        const PlanResponse response = service.serve(r);
        lat[t].push_back(seconds_since(t0));
        if (response.outcome == PlanOutcome::kShed) std::printf("warning: shed under warm load\n");
      }
    });
  }
  for (auto& th : threads) th.join();
  const double warm_wall_s = seconds_since(t_warm);
  const ServiceStats after = service.stats();

  std::vector<double> all_lat;
  for (const auto& v : lat) all_lat.insert(all_lat.end(), v.begin(), v.end());
  const std::size_t ops = all_lat.size();
  const double warm_rps = static_cast<double>(ops) / warm_wall_s;
  const double warm_mean_ms =
      std::accumulate(all_lat.begin(), all_lat.end(), 0.0) / static_cast<double>(ops) * 1e3;
  const double p50_ms = bench::percentile_nearest_rank(all_lat, 0.50) * 1e3;
  const double p99_ms = bench::percentile_nearest_rank(all_lat, 0.99) * 1e3;
  const std::uint64_t warm_requests = after.requests - before.requests;
  const double hit_rate =
      static_cast<double>(after.hits - before.hits) / static_cast<double>(warm_requests);
  const double speedup = warm_rps / uncached_rps;

  std::printf("warm:     %zu ops over %u threads in %.2f s  →  %.0f plans/s (%.0fx uncached)\n",
              ops, args.threads, warm_wall_s, warm_rps, speedup);
  std::printf("          hit rate %.1f%%  |  latency mean %.3f ms  p50 %.3f ms  p99 %.3f ms\n",
              hit_rate * 100.0, warm_mean_ms, p50_ms, p99_ms);
  std::printf("          solves %llu  joins %llu  sheds %llu  stale-evicted %llu\n",
              static_cast<unsigned long long>(after.solves - before.solves),
              static_cast<unsigned long long>(after.dedup_joins - before.dedup_joins),
              static_cast<unsigned long long>(after.sheds - before.sheds),
              static_cast<unsigned long long>(after.stale_evicted));

  // --- Phase 3: identical burst at a fresh epoch --------------------------
  board.ingest({});  // bump: nothing is cached for the new epoch
  const ServiceStats pre_burst = service.stats();
  constexpr int kBurst = 16;
  std::vector<std::thread> burst;
  for (int t = 0; t < kBurst; ++t)
    burst.emplace_back([&] { (void)service.serve(request_for(0)); });
  for (auto& th : burst) th.join();
  const ServiceStats post_burst = service.stats();
  const std::uint64_t burst_solves = post_burst.solves - pre_burst.solves;
  const std::uint64_t burst_joins = post_burst.dedup_joins - pre_burst.dedup_joins;
  std::printf("burst:    %d identical requests at a fresh epoch → %llu solve(s), %llu join(s)\n",
              kBurst, static_cast<unsigned long long>(burst_solves),
              static_cast<unsigned long long>(burst_joins));

  bench::note("acceptance gates");
  gate("warm throughput >= 50x uncached", speedup >= 50.0);
  gate("hit rate >= 90% under the repeated-request mix", hit_rate >= 0.90);
  gate("exactly one solve per identical burst", burst_solves == 1);

  if (!args.json_path.empty()) {
    std::vector<bench::JsonResult> results;
    results.push_back({"uncached_solve", solve_lat.size(), solve_mean_s * 1e3,
                       bench::percentile_nearest_rank(solve_lat, 0.50) * 1e3,
                       bench::percentile_nearest_rank(solve_lat, 0.99) * 1e3, {}});
    results.push_back({"warm_serve", ops, warm_mean_ms, p50_ms, p99_ms, {}});
    bench::write_json(args.json_path, results);
  }

  const bool ok = speedup >= 50.0 && hit_rate >= 0.90 && burst_solves == 1;
  return ok ? 0 : 1;
}
