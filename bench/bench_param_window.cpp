// §5.2 parameter study — T_m: the adaptive optimization window. The paper
// finds ~15 h best: shorter windows pay re-planning/checkpoint churn,
// longer windows let the plan go stale against the drifting spot market.
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Parameter study — T_m", "cost vs optimization window (BT, deadline 1.5×)");

  const Experiment env;
  const AppProfile bt = paper_profile("BT");
  const double deadline = env.deadline(bt, /*loose=*/true);

  Table t("BT under varying optimization window");
  t.header({"T_m (h)", "norm cost", "±std", "miss", "windows/run"});
  for (double tm : {2.5, 5.0, 10.0, 15.0, 20.0, 30.0}) {
    AdaptiveConfig ad = env.adaptive_config();
    ad.window_h = tm;
    const AdaptiveEngine engine(&env.catalog(), &env.estimator(), ad);

    MonteCarloConfig mc;
    mc.runs = env.options().runs;
    mc.reserve_h = 96.0;
    mc.seed = env.options().seed ^ 0x73;
    const MonteCarloRunner runner(&env.market(), {}, mc);
    const MonteCarloStats stats = runner.run_adaptive(engine, bt, deadline);

    MarketReplayOracle oracle(&env.market());
    const AdaptiveResult one = engine.run(bt, oracle, 48.0, deadline);

    t.row({Table::num(tm, 1), Table::num(stats.cost.mean / env.baseline_cost(bt), 3),
           Table::num(stats.cost.stddev / env.baseline_cost(bt), 3),
           Table::num(100.0 * stats.deadline_miss_rate, 0) + "%",
           std::to_string(one.windows)});
  }
  std::printf("%s\n", t.render().c_str());
  bench::note("expected shape: a sweet spot at moderate windows (paper: ~15 h); very short "
              "windows add boundary-checkpoint churn and optimization overhead, very long "
              "windows track the market poorly (§5.2).");
  return 0;
}
