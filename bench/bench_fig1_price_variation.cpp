// Figure 1 — spot price variation in temporal and spatial dimensions:
// m1.medium and m1.large in us-east-1a / us-east-1b over three days.
// The paper's qualitative observations to reproduce: long flat stretches,
// abrupt spikes far above on-demand on some (type, zone) pairs, and very
// different behaviour for the same type across zones.
#include "bench_util.h"
#include "trace/market.h"

using namespace sompi;

int main() {
  bench::banner("Figure 1", "spot price variation (3 days, 2 types × 2 zones)");

  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/3.0, 0.25, 2014);

  const struct {
    const char* type;
    const char* zone;
  } series[] = {
      {"m1.medium", "us-east-1a"},
      {"m1.medium", "us-east-1b"},
      {"m1.large", "us-east-1a"},
      {"m1.large", "us-east-1b"},
  };

  // (a) the price series, sampled every 4 hours.
  Table t("Spot price series, USD/h (sample every 4 h)");
  {
    std::vector<std::string> header{"hour"};
    for (const auto& s : series) header.push_back(std::string(s.type) + "@" + s.zone);
    t.header(header);
  }
  for (double h = 0.0; h < 72.0; h += 4.0) {
    std::vector<std::string> row{Table::num(h, 0)};
    for (const auto& s : series) {
      const CircleGroupSpec g{catalog.type_index(s.type), catalog.zone_index(s.zone)};
      row.push_back(Table::num(market.trace(g).price_at_hours(h), 4));
    }
    t.row(row);
  }
  std::printf("%s\n", t.render().c_str());

  // (b) per-series summary: the paper's observations quantified.
  Table s("Per-series summary over 72 h");
  s.header({"series", "on-demand", "min", "mean", "max", "max/od", "time>od"});
  for (const auto& sr : series) {
    const CircleGroupSpec g{catalog.type_index(sr.type), catalog.zone_index(sr.zone)};
    const SpotTrace& trace = market.trace(g);
    const double od = catalog.type(g.type_index).ondemand_usd_h;
    double mean = 0.0;
    std::size_t above = 0;
    for (std::size_t i = 0; i < trace.steps(); ++i) {
      mean += trace.price(i);
      if (trace.price(i) > od) ++above;
    }
    mean /= static_cast<double>(trace.steps());
    s.row({std::string(sr.type) + "@" + sr.zone, Table::num(od, 3),
           Table::num(trace.min_price(), 4), Table::num(mean, 4),
           Table::num(trace.max_price(), 3), Table::num(trace.max_price() / od, 1),
           Table::num(100.0 * above / trace.steps(), 1) + "%"});
  }
  std::printf("%s\n", s.render().c_str());
  bench::note("expected shape: us-east-1a spiky (peaks ≫ on-demand, like the paper's ~$10 "
              "m1.medium spike), us-east-1b flat near the calm level.");
  return 0;
}
