// Figure 7 — monetary cost as the deadline loosens, for BT (comp),
// FT (comm) and BTIO (IO). The x axis is how much larger the deadline is
// than Baseline Time (the paper sweeps 0 to +0.5). The paper's shape: cost
// falls in steps as cheaper instance types become deadline-eligible
// (cc2.8xlarge → c3.xlarge → m1.medium → m1.small for BT), saturating at
// ~70% off for BT, ~50% for FT (which maxes out by +0.1), and >60% for
// BTIO with the m1.medium → m1.small switch near +0.1.
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Figure 7", "cost vs deadline requirement (BT, FT, BTIO)");

  const Experiment env;
  const ExecTimeEstimator& est = env.estimator();
  const SompiOptimizer opt(&env.catalog(), &est, env.sompi_config());

  for (const char* name : {"BT", "FT", "BTIO"}) {
    const AppProfile app = paper_profile(name);
    const double base_t = env.baseline_time(app);

    Table t(std::string(name) + " — SOMPI cost vs deadline (normalized to Baseline)");
    t.header({"deadline-base", "norm cost", "±std", "miss", "spot types selected"});
    for (double extra = 0.0; extra <= 0.501; extra += 0.05) {
      const double deadline = base_t * (1.0 + extra);

      // Monte-Carlo cost of the adaptive run at this deadline.
      MonteCarloConfig mc;
      mc.runs = env.options().runs;
      mc.reserve_h = 96.0;
      mc.seed = env.options().seed ^ 0xF16;
      const MonteCarloRunner runner(&env.market(), {}, mc);
      const AdaptiveEngine engine(&env.catalog(), &est, env.adaptive_config());
      const MonteCarloStats stats = runner.run_adaptive(engine, app, deadline);

      // Which instance types a from-scratch plan picks at this deadline —
      // the paper's "switch point" annotation (arrows in Figure 7).
      const Plan plan = opt.optimize(app, env.market(), deadline);
      std::string types;
      for (const auto& g : plan.groups) {
        const std::string tn = env.catalog().type(g.spec.type_index).name;
        if (types.find(tn) == std::string::npos) types += (types.empty() ? "" : "+") + tn;
      }
      if (types.empty()) types = "(on-demand only)";

      t.row({"+" + Table::num(extra, 2), Table::num(stats.cost.mean / env.baseline_cost(app), 3),
             Table::num(stats.cost.stddev / env.baseline_cost(app), 3),
             Table::num(100.0 * stats.deadline_miss_rate, 0) + "%", types});
    }
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape: cost decreases (weakly) with the deadline; the selected spot "
              "type walks down the price ladder at the paper's switch points; FT saturates "
              "early (only cc2.8xlarge is ever viable).");
  return 0;
}
