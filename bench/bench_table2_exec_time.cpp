// Table 2 — normalized execution time (vs Baseline Time) for Marathe-Opt
// and SOMPI across the six NPB workloads under loose and tight deadlines.
// The paper's shape: both methods similar; loose-deadline times well below
// the deadline (1.34–1.45 for comp/IO, ~1.04 for comm); tight-deadline
// times hugging the deadline (~1.05).
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Table 2", "normalized execution time, Marathe-Opt vs SOMPI");

  const Experiment env;
  const auto apps = paper_profiles();

  for (const bool loose : {true, false}) {
    Table t(loose ? "Loose deadline (1.5×)" : "Tight deadline (1.05×)");
    t.header({"method", "BT", "SP", "LU", "FT", "IS", "BTIO"});
    std::vector<std::string> mo_row{"Marathe-Opt"};
    std::vector<std::string> s_row{"SOMPI"};
    for (const AppProfile& app : apps) {
      mo_row.push_back(Table::num(env.eval_marathe(app, loose, true).norm_time, 2));
      s_row.push_back(Table::num(env.eval_sompi(app, loose).norm_time, 2));
    }
    t.row(mo_row);
    t.row(s_row);
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape (paper Table 2): similar times for both methods; "
              "loose-deadline comm apps run near 1.0× (cc2.8xlarge replicas), comp/IO apps "
              "near 1.3–1.45×; tight-deadline times land near the 1.05× deadline.");
  return 0;
}
