// Platform cost-model benchmark (DESIGN.md §12).
// Times the deterministic op-level models (p2p / tree collectives /
// checkpoint I/O) over the committed heterogeneous example platform and one
// full optimizer solve through the platform-backed estimator, and emits the
// modeled costs as exact counters.
//
//   bench_platform [--json <path>] [--check <baseline.json>]
//
// Three structural gates run on every invocation, timing-free:
//   * flat identity   — a Platform::flat estimator must produce the same
//     plan fingerprint as the legacy catalog-only estimator (the bit-exact
//     regression anchor for the whole subsystem);
//   * hetero diverge  — the example platform (slow-network zone, shared
//     uplinks) must CHANGE the fingerprint, or the platform is dead weight;
//   * thread purity   — the hetero solve at 8 threads must bit-match the
//     1-thread solve.
// --check additionally gates every counter exactly against the committed
// baseline: the modeled nanoseconds are pure functions of the platform text
// and the catalog, so any drift is a real model change, not noise.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/catalog.h"
#include "common/rng.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "platform/examples.h"
#include "platform/models.h"
#include "platform/platform.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "trace/market.h"

using namespace sompi;

namespace {

constexpr std::size_t kP2pBytes = 64 * 1024;
constexpr std::size_t kCollectiveBytes = 1024 * 1024;
constexpr int kCollectiveRanks = 16;
constexpr std::uint64_t kSnapshotBytes = 1ull << 30;  // 1 GiB of checkpoint state
constexpr int kInstances = 4;
constexpr int kSweepIters = 50;
constexpr std::uint64_t kMarketSeed = 97;

/// One sweep of every model over every (type, zone) of the example platform;
/// the accumulated llround(sec·1e9) sums are the gateable counters.
struct SweepCosts {
  long long p2p_ns = 0;
  long long bcast_ns = 0;
  long long allreduce_ns = 0;
  long long cache_write_ns = 0;
  long long flush_ns = 0;
  long long restore_ns = 0;
  bool allreduce_is_two_bcasts = true;
};

SweepCosts run_sweep(const Catalog& catalog, const platform::NetworkModel& net) {
  SweepCosts c;
  for (const InstanceType& type : catalog.types()) {
    for (const Zone& zone : catalog.zones()) {
      const double bcast =
          net.bcast_seconds(type, zone.name, kCollectiveBytes, kCollectiveRanks);
      const double allreduce =
          net.allreduce_seconds(type, zone.name, kCollectiveBytes, kCollectiveRanks);
      if (allreduce != 2.0 * bcast) c.allreduce_is_two_bcasts = false;
      c.p2p_ns += std::llround(net.p2p_seconds(type, zone.name, kP2pBytes, 8) * 1e9);
      c.bcast_ns += std::llround(bcast * 1e9);
      c.allreduce_ns += std::llround(allreduce * 1e9);
      c.cache_write_ns += std::llround(
          net.cache_write_seconds(type, zone.name, kSnapshotBytes, kInstances) * 1e9);
      c.flush_ns +=
          std::llround(net.flush_seconds(type, zone.name, kSnapshotBytes, kInstances) * 1e9);
      c.restore_ns += std::llround(
          net.restore_seconds(type, zone.name, kSnapshotBytes, kInstances, false) * 1e9);
    }
  }
  return c;
}

/// Same solve as tests/test_platform.cpp: legacy-derived deadline for every
/// estimator, so a fingerprint difference indicts the per-group profiles.
std::string solve_fingerprint(const Catalog& catalog, const ExecTimeEstimator& estimator,
                              unsigned threads) {
  Rng rng(kMarketSeed);
  const Market market = generate_market(catalog, random_market_profile(catalog, rng), 1.5,
                                        0.25, kMarketSeed);
  const AppProfile app = paper_profile("BT");
  const ExecTimeEstimator legacy;
  const double deadline_h = OnDemandSelector(&catalog, &legacy).baseline(app).t_h * 1.5;
  OptimizerConfig config;
  config.max_candidates = 4;
  config.max_groups = 2;
  config.setup.log_levels = 3;
  config.setup.failure.samples = 400;
  config.ratio_bins = 32;
  config.threads = threads;
  const SompiOptimizer optimizer(&catalog, &estimator, config);
  return plan_fingerprint(optimizer.optimize(app, market, deadline_h));
}

std::string arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return "";
}

/// Same flat-scan baseline lookup as bench_multilevel_ckpt.
std::optional<double> baseline_field(const std::string& text, const std::string& record,
                                     const std::string& key) {
  const std::string tag = "\"name\": \"" + record + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t end = text.find('}', at);
  const std::string want = "\"" + key + "\": ";
  const std::size_t field = text.find(want, at);
  if (field == std::string::npos || field > end) return std::nullopt;
  return std::strtod(text.c_str() + field + want.size(), nullptr);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string check_path = arg_value(argc, argv, "--check");

  bench::banner("platform",
                "Op-level platform cost models + platform-backed optimizer solve");

  bool ok = true;
  std::vector<bench::JsonResult> results;

  const Catalog catalog = paper_catalog();
  const platform::Platform hetero = platform::example_hetero_platform();
  const platform::NetworkModel net(&hetero);

  // --- model sweep: every op over every (type, zone) of the example --------
  SweepCosts sweep;
  std::vector<double> sweep_ms(kSweepIters);
  for (int i = 0; i < kSweepIters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    sweep = run_sweep(catalog, net);
    sweep_ms[i] = ms_since(t0);
  }
  double sweep_mean = 0.0;
  for (const double ms : sweep_ms) sweep_mean += ms;
  sweep_mean /= static_cast<double>(kSweepIters);

  std::printf("%-12s %14s %14s %14s %14s %14s %14s\n", "sweep", "p2p_ns", "bcast_ns",
              "allred_ns", "cache_ns", "flush_ns", "restore_ns");
  std::printf("%-12s %14lld %14lld %14lld %14lld %14lld %14lld\n", "hetero", sweep.p2p_ns,
              sweep.bcast_ns, sweep.allreduce_ns, sweep.cache_write_ns, sweep.flush_ns,
              sweep.restore_ns);
  if (!sweep.allreduce_is_two_bcasts) {
    std::fprintf(stderr, "FAIL: allreduce is not bitwise two bcasts somewhere\n");
    ok = false;
  }
  results.push_back({"collectives",
                     static_cast<std::size_t>(kSweepIters),
                     sweep_mean,
                     bench::percentile_nearest_rank(sweep_ms, 0.5),
                     bench::percentile_nearest_rank(sweep_ms, 0.99),
                     {{"p2p_ns", static_cast<double>(sweep.p2p_ns)},
                      {"bcast_ns", static_cast<double>(sweep.bcast_ns)},
                      {"allreduce_ns", static_cast<double>(sweep.allreduce_ns)},
                      {"cache_write_ns", static_cast<double>(sweep.cache_write_ns)},
                      {"flush_ns", static_cast<double>(sweep.flush_ns)},
                      {"restore_ns", static_cast<double>(sweep.restore_ns)}}});

  // --- full solves: flat identity, hetero divergence, thread purity --------
  const platform::Platform flat = platform::Platform::flat(catalog);
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator flat_est(&flat);
  const ExecTimeEstimator hetero_est(&hetero);

  const std::string legacy_fp = solve_fingerprint(catalog, legacy, 1);
  const std::string flat_fp = solve_fingerprint(catalog, flat_est, 1);
  const auto t0 = std::chrono::steady_clock::now();
  const std::string hetero_fp = solve_fingerprint(catalog, hetero_est, 1);
  const double hetero_solve_ms = ms_since(t0);
  const std::string hetero_fp8 = solve_fingerprint(catalog, hetero_est, 8);

  const bool flat_matches = flat_fp == legacy_fp;
  const bool hetero_diverges = hetero_fp != legacy_fp;
  const bool thread_invariant = hetero_fp8 == hetero_fp;
  if (!flat_matches) {
    std::fprintf(stderr, "FAIL: flat-platform plan fingerprint diverged from legacy\n");
    ok = false;
  }
  if (!hetero_diverges) {
    std::fprintf(stderr, "FAIL: hetero platform did not change the plan fingerprint\n");
    ok = false;
  }
  if (!thread_invariant) {
    std::fprintf(stderr, "FAIL: hetero solve differs between 1 and 8 threads\n");
    ok = false;
  }
  if (ok)
    bench::note("flat solve == legacy; hetero diverges; 8-thread solve bit-matches 1-thread "
                "(" + std::to_string(hetero_solve_ms) + " ms/solve)");

  results.push_back({"plans",
                     1,
                     hetero_solve_ms,
                     hetero_solve_ms,
                     hetero_solve_ms,
                     {{"flat_matches_legacy", flat_matches ? 1.0 : 0.0},
                      {"hetero_diverges", hetero_diverges ? 1.0 : 0.0},
                      {"hetero_thread_invariant", thread_invariant ? 1.0 : 0.0}}});

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    // Every counter is a pure function of the platform text and the catalog,
    // so the gate is exact (timing fields are not gated).
    for (const bench::JsonResult& r : results) {
      for (const auto& [key, value] : r.counters) {
        const std::optional<double> base = baseline_field(baseline, r.name, key);
        if (!base) {
          std::fprintf(stderr, "FAIL: baseline %s lacks %s for %s\n", check_path.c_str(),
                       key.c_str(), r.name.c_str());
          ok = false;
          continue;
        }
        if (value != *base) {
          std::fprintf(stderr, "FAIL: %s %s = %.6f != baseline %.6f\n", r.name.c_str(),
                       key.c_str(), value, *base);
          ok = false;
        }
      }
    }
    if (ok) bench::note("deterministic-counter check passed against " + check_path);
  }

  if (!json_path.empty()) bench::write_json(json_path, results);
  return ok ? 0 : 1;
}
