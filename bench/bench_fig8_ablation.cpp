// Figure 8 — individual fault-tolerance mechanisms vs the combined system:
// All-Unable (no FT), w/o-RP (checkpoints only), w/o-CK (replication only),
// w/o-MT (no update maintenance) and full SOMPI, under loose and tight
// deadlines. The paper's observations to reproduce: single mechanisms are
// far from the combined optimum, and disabling update maintenance raises
// both cost and variance/unreliability.
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Figure 8", "individual fault-tolerance mechanisms (BT workload)");

  const Experiment env;
  const AppProfile bt = paper_profile("BT");

  for (const bool loose : {true, false}) {
    Table t(std::string("Normalized cost — ") + (loose ? "loose" : "tight") + " deadline");
    t.header({"method", "norm cost", "±std", "miss rate"});
    const struct {
      const char* name;
      MethodResult result;
    } rows[] = {
        {"All-Unable", env.eval_ablation(bt, loose, all_unable_config(), "All-Unable")},
        {"w/o-RP", env.eval_ablation(bt, loose, without_replication_config(), "w/o-RP")},
        {"w/o-CK", env.eval_ablation(bt, loose, without_checkpoint_config(), "w/o-CK")},
        {"w/o-MT", env.eval_sompi_static(bt, loose)},
        {"SOMPI", env.eval_sompi(bt, loose)},
    };
    for (const auto& r : rows)
      t.row({r.name, Table::num(r.result.norm_cost, 3), Table::num(r.result.norm_cost_std, 3),
             Table::num(100.0 * r.result.miss_rate, 0) + "%"});
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape: SOMPI matches or beats every ablation on cost at equal or "
              "better reliability. All-Unable is cheap only because it gambles (nonzero "
              "miss rate); w/o-CK needs costly full replicas to stay safe; w/o-RP pays for "
              "recoveries; w/o-MT loses cost and reliability as the market drifts (§5.4.2).");
  return 0;
}
