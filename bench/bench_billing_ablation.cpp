// Billing-model ablation (design decision 6 in DESIGN.md): the paper's cost
// formulas are proportional in time, but 2014 Amazon billed whole
// instance-hours and refunded the last partial hour of a provider-initiated
// (out-of-bid) kill. How much do the conclusions depend on that choice?
#include "bench_util.h"

using namespace sompi;

int main() {
  bench::banner("Billing ablation", "proportional vs hourly vs hourly-with-kill-refund");

  const Experiment env;
  const SompiOptimizer opt(&env.catalog(), &env.estimator(), env.sompi_config());

  const struct {
    const char* name;
    BillingModel model;
  } models[] = {
      {"proportional (paper's formulas)", BillingModel::kProportional},
      {"hourly round-up", BillingModel::kHourlyRoundUp},
      {"hourly, provider-kill refund", BillingModel::kHourlyProviderKillFree},
  };

  for (const char* app_name : {"BT", "FT"}) {
    const AppProfile app = paper_profile(app_name);
    const double deadline = env.deadline(app, /*loose=*/true);
    const Plan plan = opt.optimize(app, env.market(), deadline);

    Table t(std::string(app_name) + " — the same SOMPI plan under each billing model");
    t.header({"billing model", "norm cost", "±std", "vs proportional"});
    double prop = 0.0;
    for (const auto& m : models) {
      ReplayConfig rc;
      rc.billing = m.model;
      MonteCarloConfig mc;
      mc.runs = env.options().runs;
      mc.reserve_h = 96.0;
      mc.seed = env.options().seed ^ 0xB111;
      const MonteCarloRunner runner(&env.market(), rc, mc);
      const MonteCarloStats stats = runner.run_plan(plan, deadline);
      const double norm = stats.cost.mean / env.baseline_cost(app);
      if (m.model == BillingModel::kProportional) prop = norm;
      t.row({m.name, Table::num(norm, 3),
             Table::num(stats.cost.stddev / env.baseline_cost(app), 3),
             prop > 0.0 ? Table::num(100.0 * (norm / prop - 1.0), 1) + "%" : "-"});
    }
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape: with 0.25 h steps, hourly rounding inflates the bill by a "
              "bounded percentage and the out-of-bid refund claws a little back — the "
              "paper's proportional approximation does not change who wins.");
  return 0;
}
