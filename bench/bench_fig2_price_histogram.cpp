// Figure 2 — spot price histograms of m1.medium in us-east-1a over four
// consecutive days. The paper's point: the day-to-day distributions are
// close to each other, so the recent history predicts the near future's
// DISTRIBUTION even though the exact price path is unpredictable.
#include "bench_util.h"
#include "trace/market.h"

using namespace sompi;

int main() {
  bench::banner("Figure 2", "spot price histograms, 4 consecutive days (m1.medium@us-east-1a)");

  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), /*days=*/4.0, 0.25, 2014);
  const CircleGroupSpec g{catalog.type_index("m1.medium"), catalog.zone_index("us-east-1a")};
  const SpotTrace& trace = market.trace(g);

  const std::size_t steps_per_day = static_cast<std::size_t>(24.0 / trace.step_hours());
  const double base = base_spot_price(catalog.type(g.type_index));
  // Bins span the calm band up to 4× base; the spike tail lands in the last
  // bin (as in the paper's histogram, where the rare spikes are off-scale).
  const double hi = 4.0 * base;

  std::vector<Histogram> days;
  for (int d = 0; d < 4; ++d) {
    Histogram h(0.0, hi, 12);
    for (std::size_t i = 0; i < steps_per_day; ++i)
      h.add(trace.price(static_cast<std::size_t>(d) * steps_per_day + i));
    days.push_back(h);
  }

  Table t("Per-day price densities (% of steps per bin)");
  {
    std::vector<std::string> header{"bin (USD/h)"};
    for (int d = 0; d < 4; ++d) header.push_back("day " + std::to_string(d + 1));
    t.header(header);
  }
  for (std::size_t b = 0; b < days[0].bins(); ++b) {
    std::vector<std::string> row{"[" + Table::num(days[0].bin_lo(b), 4) + "," +
                                 Table::num(days[0].bin_hi(b), 4) + ")"};
    for (const auto& h : days) row.push_back(Table::num(100.0 * h.density(b), 1));
    t.row(row);
  }
  std::printf("%s\n", t.render().c_str());

  Table d("Pairwise L1 distance between day distributions (0 = identical, 2 = disjoint)");
  d.header({"pair", "L1"});
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b)
      d.row({"day" + std::to_string(a + 1) + " vs day" + std::to_string(b + 1),
             Table::num(Histogram::l1_distance(days[static_cast<std::size_t>(a)],
                                               days[static_cast<std::size_t>(b)]),
                        3)});
  std::printf("%s\n", d.render().c_str());
  bench::note("expected shape: distributions concentrated at the calm level and very close "
              "across days (small L1) — the stability SOMPI's estimation relies on (§2.1).");
  return 0;
}
