// Figure 6 — comparison with simple utilizations of on-demand and spot
// instances: On-demand / Spot-Inf (bid $999) / Spot-Avg (bid = historical
// average) / SOMPI per workload category under loose and tight deadlines.
// The paper's shape: both heuristics beat On-demand, SOMPI beats both
// (28%/38% loose, 20%/22% tight), and Spot-Inf's variance is far larger
// than SOMPI's (it rides the spikes instead of capping them).
#include <map>

#include "bench_util.h"

using namespace sompi;

namespace {

struct CategoryAgg {
  double od = 0, inf = 0, avg = 0, sompi = 0;
  double inf_std = 0, sompi_std = 0;
  int n = 0;
};

}  // namespace

int main() {
  bench::banner("Figure 6", "simple on-demand/spot heuristics vs SOMPI");

  const Experiment env;
  const auto apps = paper_profiles();

  for (const bool loose : {true, false}) {
    std::map<AppCategory, CategoryAgg> agg;
    for (const AppProfile& app : apps) {
      auto& a = agg[app.category];
      a.od += env.eval_on_demand(app, loose).norm_cost;
      const MethodResult inf = env.eval_spot_inf(app, loose);
      a.inf += inf.norm_cost;
      a.inf_std += inf.norm_cost_std;
      a.avg += env.eval_spot_avg(app, loose).norm_cost;
      const MethodResult s = env.eval_sompi(app, loose);
      a.sompi += s.norm_cost;
      a.sompi_std += s.norm_cost_std;
      ++a.n;
    }

    Table t(std::string("Normalized cost per category — ") + (loose ? "loose" : "tight") +
            " deadline");
    t.header({"category", "On-demand", "Spot-Inf", "Spot-Avg", "SOMPI", "Spot-Inf ±", "SOMPI ±"});
    for (const auto& [cat, a] : agg) {
      const auto n = static_cast<double>(a.n);
      const std::string label = category_label(cat) == "comp"    ? "Computation"
                                : category_label(cat) == "comm" ? "Communication"
                                                                : "IO";
      t.row({label, Table::num(a.od / n, 3), Table::num(a.inf / n, 3),
             Table::num(a.avg / n, 3), Table::num(a.sompi / n, 3),
             Table::num(a.inf_std / n, 3), Table::num(a.sompi_std / n, 3)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  bench::note("expected shape (paper): Spot-Inf and Spot-Avg below On-demand, SOMPI below "
              "both, and Spot-Inf's cost variance ≫ SOMPI's — the suitable bid cap avoids "
              "the worst case (§5.3.2).");
  return 0;
}
