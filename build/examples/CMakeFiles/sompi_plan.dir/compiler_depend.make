# Empty compiler generated dependencies file for sompi_plan.
# This may be replaced when dependencies are built.
