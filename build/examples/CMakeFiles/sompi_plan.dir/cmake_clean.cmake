file(REMOVE_RECURSE
  "CMakeFiles/sompi_plan.dir/sompi_plan.cpp.o"
  "CMakeFiles/sompi_plan.dir/sompi_plan.cpp.o.d"
  "sompi_plan"
  "sompi_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
