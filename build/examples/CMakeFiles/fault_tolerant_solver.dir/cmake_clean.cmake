file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_solver.dir/fault_tolerant_solver.cpp.o"
  "CMakeFiles/fault_tolerant_solver.dir/fault_tolerant_solver.cpp.o.d"
  "fault_tolerant_solver"
  "fault_tolerant_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
