# Empty compiler generated dependencies file for spot_market_explorer.
# This may be replaced when dependencies are built.
