
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spot_market_explorer.cpp" "examples/CMakeFiles/spot_market_explorer.dir/spot_market_explorer.cpp.o" "gcc" "examples/CMakeFiles/spot_market_explorer.dir/spot_market_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sompi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sompi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sompi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sompi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/sompi_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/sompi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sompi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
