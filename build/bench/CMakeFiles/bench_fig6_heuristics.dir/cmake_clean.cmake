file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_heuristics.dir/bench_fig6_heuristics.cpp.o"
  "CMakeFiles/bench_fig6_heuristics.dir/bench_fig6_heuristics.cpp.o.d"
  "bench_fig6_heuristics"
  "bench_fig6_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
