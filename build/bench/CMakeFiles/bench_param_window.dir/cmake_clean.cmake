file(REMOVE_RECURSE
  "CMakeFiles/bench_param_window.dir/bench_param_window.cpp.o"
  "CMakeFiles/bench_param_window.dir/bench_param_window.cpp.o.d"
  "bench_param_window"
  "bench_param_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
