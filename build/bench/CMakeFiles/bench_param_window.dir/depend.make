# Empty dependencies file for bench_param_window.
# This may be replaced when dependencies are built.
