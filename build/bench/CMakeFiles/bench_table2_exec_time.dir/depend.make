# Empty dependencies file for bench_table2_exec_time.
# This may be replaced when dependencies are built.
