# Empty dependencies file for bench_param_kappa.
# This may be replaced when dependencies are built.
