file(REMOVE_RECURSE
  "CMakeFiles/bench_param_kappa.dir/bench_param_kappa.cpp.o"
  "CMakeFiles/bench_param_kappa.dir/bench_param_kappa.cpp.o.d"
  "bench_param_kappa"
  "bench_param_kappa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_kappa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
