file(REMOVE_RECURSE
  "CMakeFiles/bench_billing_ablation.dir/bench_billing_ablation.cpp.o"
  "CMakeFiles/bench_billing_ablation.dir/bench_billing_ablation.cpp.o.d"
  "bench_billing_ablation"
  "bench_billing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_billing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
