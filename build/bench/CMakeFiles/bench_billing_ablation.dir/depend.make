# Empty dependencies file for bench_billing_ablation.
# This may be replaced when dependencies are built.
