# Empty compiler generated dependencies file for bench_param_slack.
# This may be replaced when dependencies are built.
