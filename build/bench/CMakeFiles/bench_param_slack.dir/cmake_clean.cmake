file(REMOVE_RECURSE
  "CMakeFiles/bench_param_slack.dir/bench_param_slack.cpp.o"
  "CMakeFiles/bench_param_slack.dir/bench_param_slack.cpp.o.d"
  "bench_param_slack"
  "bench_param_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
