# Empty dependencies file for bench_opt_overhead.
# This may be replaced when dependencies are built.
