file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_overhead.dir/bench_opt_overhead.cpp.o"
  "CMakeFiles/bench_opt_overhead.dir/bench_opt_overhead.cpp.o.d"
  "bench_opt_overhead"
  "bench_opt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
