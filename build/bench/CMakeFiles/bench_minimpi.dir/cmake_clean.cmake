file(REMOVE_RECURSE
  "CMakeFiles/bench_minimpi.dir/bench_minimpi.cpp.o"
  "CMakeFiles/bench_minimpi.dir/bench_minimpi.cpp.o.d"
  "bench_minimpi"
  "bench_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
