# Empty compiler generated dependencies file for bench_minimpi.
# This may be replaced when dependencies are built.
