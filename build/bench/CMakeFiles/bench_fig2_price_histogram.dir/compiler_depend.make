# Empty compiler generated dependencies file for bench_fig2_price_histogram.
# This may be replaced when dependencies are built.
