# Empty dependencies file for bench_acc_failure_rate.
# This may be replaced when dependencies are built.
