file(REMOVE_RECURSE
  "CMakeFiles/bench_acc_failure_rate.dir/bench_acc_failure_rate.cpp.o"
  "CMakeFiles/bench_acc_failure_rate.dir/bench_acc_failure_rate.cpp.o.d"
  "bench_acc_failure_rate"
  "bench_acc_failure_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acc_failure_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
