# Empty compiler generated dependencies file for bench_fig1_price_variation.
# This may be replaced when dependencies are built.
