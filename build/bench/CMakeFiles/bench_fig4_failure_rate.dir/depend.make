# Empty dependencies file for bench_fig4_failure_rate.
# This may be replaced when dependencies are built.
