# Empty dependencies file for bench_acc_model.
# This may be replaced when dependencies are built.
