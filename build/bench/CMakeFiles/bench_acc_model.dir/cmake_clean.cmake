file(REMOVE_RECURSE
  "CMakeFiles/bench_acc_model.dir/bench_acc_model.cpp.o"
  "CMakeFiles/bench_acc_model.dir/bench_acc_model.cpp.o.d"
  "bench_acc_model"
  "bench_acc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
