
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/sompi_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_analytic.cpp" "tests/CMakeFiles/sompi_tests.dir/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_analytic.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/sompi_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_apps_extra.cpp" "tests/CMakeFiles/sompi_tests.dir/test_apps_extra.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_apps_extra.cpp.o.d"
  "/root/repo/tests/test_band_solver.cpp" "tests/CMakeFiles/sompi_tests.dir/test_band_solver.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_band_solver.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/sompi_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/sompi_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_ckpt_interval.cpp" "tests/CMakeFiles/sompi_tests.dir/test_ckpt_interval.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_ckpt_interval.cpp.o.d"
  "/root/repo/tests/test_cloud.cpp" "tests/CMakeFiles/sompi_tests.dir/test_cloud.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_cloud.cpp.o.d"
  "/root/repo/tests/test_combinatorics.cpp" "tests/CMakeFiles/sompi_tests.dir/test_combinatorics.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_combinatorics.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/sompi_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_failure_model.cpp" "tests/CMakeFiles/sompi_tests.dir/test_failure_model.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_failure_model.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/sompi_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/sompi_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_guard.cpp" "tests/CMakeFiles/sompi_tests.dir/test_guard.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_guard.cpp.o.d"
  "/root/repo/tests/test_incremental.cpp" "tests/CMakeFiles/sompi_tests.dir/test_incremental.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sompi_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_live.cpp" "tests/CMakeFiles/sompi_tests.dir/test_live.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_live.cpp.o.d"
  "/root/repo/tests/test_market.cpp" "tests/CMakeFiles/sompi_tests.dir/test_market.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_market.cpp.o.d"
  "/root/repo/tests/test_minimpi.cpp" "tests/CMakeFiles/sompi_tests.dir/test_minimpi.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_minimpi.cpp.o.d"
  "/root/repo/tests/test_minimpi_ext.cpp" "tests/CMakeFiles/sompi_tests.dir/test_minimpi_ext.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_minimpi_ext.cpp.o.d"
  "/root/repo/tests/test_ondemand.cpp" "tests/CMakeFiles/sompi_tests.dir/test_ondemand.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_ondemand.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/sompi_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/sompi_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_replay.cpp" "tests/CMakeFiles/sompi_tests.dir/test_replay.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_replay.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/sompi_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/sompi_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/sompi_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table_csv.cpp" "tests/CMakeFiles/sompi_tests.dir/test_table_csv.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_table_csv.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/sompi_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/sompi_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sompi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sompi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sompi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sompi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/sompi_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/sompi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sompi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
