# Empty dependencies file for sompi_tests.
# This may be replaced when dependencies are built.
