# Empty dependencies file for sompi_core.
# This may be replaced when dependencies are built.
