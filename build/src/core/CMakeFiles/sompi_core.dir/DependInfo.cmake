
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/sompi_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/ckpt_interval.cpp" "src/core/CMakeFiles/sompi_core.dir/ckpt_interval.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/ckpt_interval.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/sompi_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/failure_model.cpp" "src/core/CMakeFiles/sompi_core.dir/failure_model.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/failure_model.cpp.o.d"
  "/root/repo/src/core/ondemand.cpp" "src/core/CMakeFiles/sompi_core.dir/ondemand.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/ondemand.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/sompi_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/sompi_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/setup_builder.cpp" "src/core/CMakeFiles/sompi_core.dir/setup_builder.cpp.o" "gcc" "src/core/CMakeFiles/sompi_core.dir/setup_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sompi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
