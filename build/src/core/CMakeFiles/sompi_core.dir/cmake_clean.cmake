file(REMOVE_RECURSE
  "CMakeFiles/sompi_core.dir/adaptive.cpp.o"
  "CMakeFiles/sompi_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/sompi_core.dir/ckpt_interval.cpp.o"
  "CMakeFiles/sompi_core.dir/ckpt_interval.cpp.o.d"
  "CMakeFiles/sompi_core.dir/cost_model.cpp.o"
  "CMakeFiles/sompi_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/sompi_core.dir/failure_model.cpp.o"
  "CMakeFiles/sompi_core.dir/failure_model.cpp.o.d"
  "CMakeFiles/sompi_core.dir/ondemand.cpp.o"
  "CMakeFiles/sompi_core.dir/ondemand.cpp.o.d"
  "CMakeFiles/sompi_core.dir/optimizer.cpp.o"
  "CMakeFiles/sompi_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/sompi_core.dir/schedule.cpp.o"
  "CMakeFiles/sompi_core.dir/schedule.cpp.o.d"
  "CMakeFiles/sompi_core.dir/setup_builder.cpp.o"
  "CMakeFiles/sompi_core.dir/setup_builder.cpp.o.d"
  "libsompi_core.a"
  "libsompi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
