file(REMOVE_RECURSE
  "libsompi_core.a"
)
