
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/checkpointer.cpp" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/checkpointer.cpp.o" "gcc" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/checkpointer.cpp.o.d"
  "/root/repo/src/checkpoint/incremental.cpp" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/incremental.cpp.o" "gcc" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/incremental.cpp.o.d"
  "/root/repo/src/checkpoint/storage.cpp" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/storage.cpp.o" "gcc" "src/checkpoint/CMakeFiles/sompi_checkpoint.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/sompi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
