file(REMOVE_RECURSE
  "libsompi_checkpoint.a"
)
