# Empty dependencies file for sompi_checkpoint.
# This may be replaced when dependencies are built.
