file(REMOVE_RECURSE
  "CMakeFiles/sompi_checkpoint.dir/checkpointer.cpp.o"
  "CMakeFiles/sompi_checkpoint.dir/checkpointer.cpp.o.d"
  "CMakeFiles/sompi_checkpoint.dir/incremental.cpp.o"
  "CMakeFiles/sompi_checkpoint.dir/incremental.cpp.o.d"
  "CMakeFiles/sompi_checkpoint.dir/storage.cpp.o"
  "CMakeFiles/sompi_checkpoint.dir/storage.cpp.o.d"
  "libsompi_checkpoint.a"
  "libsompi_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
