file(REMOVE_RECURSE
  "CMakeFiles/sompi_common.dir/csv.cpp.o"
  "CMakeFiles/sompi_common.dir/csv.cpp.o.d"
  "CMakeFiles/sompi_common.dir/log.cpp.o"
  "CMakeFiles/sompi_common.dir/log.cpp.o.d"
  "CMakeFiles/sompi_common.dir/rng.cpp.o"
  "CMakeFiles/sompi_common.dir/rng.cpp.o.d"
  "CMakeFiles/sompi_common.dir/stats.cpp.o"
  "CMakeFiles/sompi_common.dir/stats.cpp.o.d"
  "CMakeFiles/sompi_common.dir/table.cpp.o"
  "CMakeFiles/sompi_common.dir/table.cpp.o.d"
  "libsompi_common.a"
  "libsompi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
