file(REMOVE_RECURSE
  "libsompi_common.a"
)
