# Empty compiler generated dependencies file for sompi_common.
# This may be replaced when dependencies are built.
