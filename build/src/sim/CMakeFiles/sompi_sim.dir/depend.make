# Empty dependencies file for sompi_sim.
# This may be replaced when dependencies are built.
