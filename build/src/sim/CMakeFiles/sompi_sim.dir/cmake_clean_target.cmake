file(REMOVE_RECURSE
  "libsompi_sim.a"
)
