file(REMOVE_RECURSE
  "CMakeFiles/sompi_sim.dir/experiment.cpp.o"
  "CMakeFiles/sompi_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/sompi_sim.dir/live.cpp.o"
  "CMakeFiles/sompi_sim.dir/live.cpp.o.d"
  "CMakeFiles/sompi_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/sompi_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/sompi_sim.dir/replay.cpp.o"
  "CMakeFiles/sompi_sim.dir/replay.cpp.o.d"
  "libsompi_sim.a"
  "libsompi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
