file(REMOVE_RECURSE
  "CMakeFiles/sompi_profile.dir/app_profile.cpp.o"
  "CMakeFiles/sompi_profile.dir/app_profile.cpp.o.d"
  "CMakeFiles/sompi_profile.dir/estimator.cpp.o"
  "CMakeFiles/sompi_profile.dir/estimator.cpp.o.d"
  "CMakeFiles/sompi_profile.dir/paper_profiles.cpp.o"
  "CMakeFiles/sompi_profile.dir/paper_profiles.cpp.o.d"
  "libsompi_profile.a"
  "libsompi_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
