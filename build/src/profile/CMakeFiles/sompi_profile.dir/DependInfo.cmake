
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/app_profile.cpp" "src/profile/CMakeFiles/sompi_profile.dir/app_profile.cpp.o" "gcc" "src/profile/CMakeFiles/sompi_profile.dir/app_profile.cpp.o.d"
  "/root/repo/src/profile/estimator.cpp" "src/profile/CMakeFiles/sompi_profile.dir/estimator.cpp.o" "gcc" "src/profile/CMakeFiles/sompi_profile.dir/estimator.cpp.o.d"
  "/root/repo/src/profile/paper_profiles.cpp" "src/profile/CMakeFiles/sompi_profile.dir/paper_profiles.cpp.o" "gcc" "src/profile/CMakeFiles/sompi_profile.dir/paper_profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
