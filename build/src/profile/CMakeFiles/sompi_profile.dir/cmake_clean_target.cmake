file(REMOVE_RECURSE
  "libsompi_profile.a"
)
