# Empty dependencies file for sompi_profile.
# This may be replaced when dependencies are built.
