file(REMOVE_RECURSE
  "libsompi_apps.a"
)
