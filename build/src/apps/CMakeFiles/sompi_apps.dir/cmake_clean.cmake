file(REMOVE_RECURSE
  "CMakeFiles/sompi_apps.dir/band_solver.cpp.o"
  "CMakeFiles/sompi_apps.dir/band_solver.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/bt.cpp.o"
  "CMakeFiles/sompi_apps.dir/bt.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/cg.cpp.o"
  "CMakeFiles/sompi_apps.dir/cg.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/ep.cpp.o"
  "CMakeFiles/sompi_apps.dir/ep.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/fft.cpp.o"
  "CMakeFiles/sompi_apps.dir/fft.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/ft.cpp.o"
  "CMakeFiles/sompi_apps.dir/ft.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/is.cpp.o"
  "CMakeFiles/sompi_apps.dir/is.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/lu.cpp.o"
  "CMakeFiles/sompi_apps.dir/lu.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/md.cpp.o"
  "CMakeFiles/sompi_apps.dir/md.cpp.o.d"
  "CMakeFiles/sompi_apps.dir/sp.cpp.o"
  "CMakeFiles/sompi_apps.dir/sp.cpp.o.d"
  "libsompi_apps.a"
  "libsompi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
