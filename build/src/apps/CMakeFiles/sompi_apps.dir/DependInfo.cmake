
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/band_solver.cpp" "src/apps/CMakeFiles/sompi_apps.dir/band_solver.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/band_solver.cpp.o.d"
  "/root/repo/src/apps/bt.cpp" "src/apps/CMakeFiles/sompi_apps.dir/bt.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/bt.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/sompi_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/apps/CMakeFiles/sompi_apps.dir/ep.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/ep.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/sompi_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/sompi_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/sompi_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/sompi_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/md.cpp" "src/apps/CMakeFiles/sompi_apps.dir/md.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/md.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "src/apps/CMakeFiles/sompi_apps.dir/sp.cpp.o" "gcc" "src/apps/CMakeFiles/sompi_apps.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/sompi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/sompi_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
