# Empty compiler generated dependencies file for sompi_apps.
# This may be replaced when dependencies are built.
