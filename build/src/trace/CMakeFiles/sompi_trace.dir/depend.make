# Empty dependencies file for sompi_trace.
# This may be replaced when dependencies are built.
