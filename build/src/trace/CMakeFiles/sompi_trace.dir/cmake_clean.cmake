file(REMOVE_RECURSE
  "CMakeFiles/sompi_trace.dir/analytic.cpp.o"
  "CMakeFiles/sompi_trace.dir/analytic.cpp.o.d"
  "CMakeFiles/sompi_trace.dir/generator.cpp.o"
  "CMakeFiles/sompi_trace.dir/generator.cpp.o.d"
  "CMakeFiles/sompi_trace.dir/market.cpp.o"
  "CMakeFiles/sompi_trace.dir/market.cpp.o.d"
  "CMakeFiles/sompi_trace.dir/spot_trace.cpp.o"
  "CMakeFiles/sompi_trace.dir/spot_trace.cpp.o.d"
  "libsompi_trace.a"
  "libsompi_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
