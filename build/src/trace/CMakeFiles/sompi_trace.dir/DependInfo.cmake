
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analytic.cpp" "src/trace/CMakeFiles/sompi_trace.dir/analytic.cpp.o" "gcc" "src/trace/CMakeFiles/sompi_trace.dir/analytic.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/sompi_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/sompi_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/market.cpp" "src/trace/CMakeFiles/sompi_trace.dir/market.cpp.o" "gcc" "src/trace/CMakeFiles/sompi_trace.dir/market.cpp.o.d"
  "/root/repo/src/trace/spot_trace.cpp" "src/trace/CMakeFiles/sompi_trace.dir/spot_trace.cpp.o" "gcc" "src/trace/CMakeFiles/sompi_trace.dir/spot_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
