file(REMOVE_RECURSE
  "libsompi_trace.a"
)
