file(REMOVE_RECURSE
  "CMakeFiles/sompi_cloud.dir/billing.cpp.o"
  "CMakeFiles/sompi_cloud.dir/billing.cpp.o.d"
  "CMakeFiles/sompi_cloud.dir/catalog.cpp.o"
  "CMakeFiles/sompi_cloud.dir/catalog.cpp.o.d"
  "libsompi_cloud.a"
  "libsompi_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
