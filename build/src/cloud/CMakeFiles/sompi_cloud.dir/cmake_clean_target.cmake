file(REMOVE_RECURSE
  "libsompi_cloud.a"
)
