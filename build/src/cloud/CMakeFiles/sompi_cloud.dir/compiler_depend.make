# Empty compiler generated dependencies file for sompi_cloud.
# This may be replaced when dependencies are built.
