# Empty compiler generated dependencies file for sompi_baselines.
# This may be replaced when dependencies are built.
