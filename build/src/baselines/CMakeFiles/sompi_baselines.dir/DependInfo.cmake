
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cpp" "src/baselines/CMakeFiles/sompi_baselines.dir/baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/sompi_baselines.dir/baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sompi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sompi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
