file(REMOVE_RECURSE
  "libsompi_baselines.a"
)
