file(REMOVE_RECURSE
  "CMakeFiles/sompi_baselines.dir/baselines.cpp.o"
  "CMakeFiles/sompi_baselines.dir/baselines.cpp.o.d"
  "libsompi_baselines.a"
  "libsompi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
