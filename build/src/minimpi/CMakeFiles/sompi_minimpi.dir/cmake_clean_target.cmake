file(REMOVE_RECURSE
  "libsompi_minimpi.a"
)
