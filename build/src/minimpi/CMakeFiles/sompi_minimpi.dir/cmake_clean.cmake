file(REMOVE_RECURSE
  "CMakeFiles/sompi_minimpi.dir/comm.cpp.o"
  "CMakeFiles/sompi_minimpi.dir/comm.cpp.o.d"
  "CMakeFiles/sompi_minimpi.dir/mailbox.cpp.o"
  "CMakeFiles/sompi_minimpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/sompi_minimpi.dir/profiler.cpp.o"
  "CMakeFiles/sompi_minimpi.dir/profiler.cpp.o.d"
  "CMakeFiles/sompi_minimpi.dir/runtime.cpp.o"
  "CMakeFiles/sompi_minimpi.dir/runtime.cpp.o.d"
  "libsompi_minimpi.a"
  "libsompi_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sompi_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
