
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/comm.cpp" "src/minimpi/CMakeFiles/sompi_minimpi.dir/comm.cpp.o" "gcc" "src/minimpi/CMakeFiles/sompi_minimpi.dir/comm.cpp.o.d"
  "/root/repo/src/minimpi/mailbox.cpp" "src/minimpi/CMakeFiles/sompi_minimpi.dir/mailbox.cpp.o" "gcc" "src/minimpi/CMakeFiles/sompi_minimpi.dir/mailbox.cpp.o.d"
  "/root/repo/src/minimpi/profiler.cpp" "src/minimpi/CMakeFiles/sompi_minimpi.dir/profiler.cpp.o" "gcc" "src/minimpi/CMakeFiles/sompi_minimpi.dir/profiler.cpp.o.d"
  "/root/repo/src/minimpi/runtime.cpp" "src/minimpi/CMakeFiles/sompi_minimpi.dir/runtime.cpp.o" "gcc" "src/minimpi/CMakeFiles/sompi_minimpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sompi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sompi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sompi_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
