# Empty compiler generated dependencies file for sompi_minimpi.
# This may be replaced when dependencies are built.
